package experiment

import (
	"context"
	"testing"

	"repro/internal/mitigate"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func TestParseBatchPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want BatchPolicy
		err  bool
	}{
		{"", BatchAuto, false},
		{"auto", BatchAuto, false},
		{"on", BatchOn, false},
		{"off", BatchOff, false},
		{"ON", BatchAuto, true},
		{"never", BatchAuto, true},
	}
	for _, c := range cases {
		got, err := ParseBatchPolicy(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseBatchPolicy(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
}

func TestBatchRepsPolicy(t *testing.T) {
	if (Executor{}).batchReps(BatchThreshold - 1) {
		t.Error("auto batched below threshold")
	}
	if !(Executor{}).batchReps(BatchThreshold) {
		t.Error("auto did not batch at threshold")
	}
	if !(Executor{Batch: BatchOn}).batchReps(1) {
		t.Error("BatchOn did not batch a single rep")
	}
	if (Executor{Batch: BatchOff}).batchReps(100) {
		t.Error("BatchOff batched")
	}
}

// batchTestSpec is a small traced spec for batched-vs-legacy comparisons.
func batchTestSpec(t *testing.T) Spec {
	t.Helper()
	p, err := platform.New("tiny-test")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByName("nbody", "small")
	if err != nil {
		t.Fatal(err)
	}
	return Spec{Platform: p, Workload: w, Model: "omp", Strategy: mitigate.Rm,
		Seed: 4242, Tracing: true}
}

// TestBatchedSeriesMatchesLegacy runs the same series with batching forced
// off and forced on (at parallelism 1 and 8) and demands identical times
// and identical traces, event for event. This is the end-to-end form of the
// snapshot-safety guarantee: every seedAt-derived per-rep RNG stream drawn
// in a forked world reproduces the from-scratch sequence.
func TestBatchedSeriesMatchesLegacy(t *testing.T) {
	spec := batchTestSpec(t)
	const reps = 6
	legacyTimes, legacyTraces, err := Executor{Parallelism: 1, Batch: BatchOff}.
		Series(context.Background(), spec, reps)
	if err != nil {
		t.Fatal(err)
	}
	legacyHash, legacyEvents := fingerprintTraces(legacyTraces)
	for _, parallelism := range []int{1, 8} {
		times, traces, err := Executor{Parallelism: parallelism, Batch: BatchOn}.
			Series(context.Background(), spec, reps)
		if err != nil {
			t.Fatal(err)
		}
		if len(times) != len(legacyTimes) {
			t.Fatalf("p=%d: %d times, legacy %d", parallelism, len(times), len(legacyTimes))
		}
		for i := range times {
			if times[i] != legacyTimes[i] {
				t.Errorf("p=%d rep %d: batched %v, legacy %v", parallelism, i, times[i], legacyTimes[i])
			}
		}
		hash, events := fingerprintTraces(traces)
		if hash != legacyHash || events != legacyEvents {
			t.Errorf("p=%d: batched traces %s (%d events), legacy %s (%d events)",
				parallelism, hash, events, legacyHash, legacyEvents)
		}
	}
}

// TestForkedRepMatchesFreshWorld is the narrow unit form of snapshot
// safety: a rep run in a world warmed by other seeds produces exactly the
// result a fresh world produces for the same seed — the per-rep RNG stream
// (seedAt-derived) is rebuilt from the seed inside the rep, so warm state
// cannot leak into it.
func TestForkedRepMatchesFreshWorld(t *testing.T) {
	spec := batchTestSpec(t)
	plan, err := mitigate.Apply(spec.Strategy, spec.Platform.Topo)
	if err != nil {
		t.Fatal(err)
	}
	key := worldKeyFor(spec)

	// Warm a world with three different-seed reps.
	warm := newWorld(key, true)
	for i := 1; i <= 3; i++ {
		s := spec
		s.Seed = seedAt(spec.Seed, i)
		if _, err := warm.run(s, plan); err != nil {
			t.Fatal(err)
		}
	}

	s := spec
	s.Seed = seedAt(spec.Seed, 0)
	got, err := warm.run(s, plan)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := newWorld(key, true).run(s, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got.ExecTime != fresh.ExecTime ||
		got.ContextSwitches != fresh.ContextSwitches ||
		got.GoroutineHandoffs != fresh.GoroutineHandoffs ||
		got.InlineDispatches != fresh.InlineDispatches {
		t.Fatalf("warm-world rep diverged: %+v vs fresh %+v", got, fresh)
	}
	gh, gn := fingerprintTraces([]*trace.Trace{got.Trace})
	fh, fn := fingerprintTraces([]*trace.Trace{fresh.Trace})
	if gh != fh || gn != fn {
		t.Fatalf("warm-world trace diverged: %s (%d events) vs fresh %s (%d events)", gh, gn, fh, fn)
	}
	if got.BatchedReps != 1 || got.Snapshots != 0 {
		t.Fatalf("warm world miscounted: snapshots=%d batched=%d", got.Snapshots, got.BatchedReps)
	}
	if fresh.Snapshots != 1 || fresh.BatchedReps != 0 {
		t.Fatalf("fresh world miscounted: snapshots=%d batched=%d", fresh.Snapshots, fresh.BatchedReps)
	}
}

// TestBatchCountersReachRegistry checks the obs registry exposes the new
// batch counters and that warm reps drive cow-copies toward zero.
func TestBatchCountersReachRegistry(t *testing.T) {
	spec := batchTestSpec(t)
	spec.Tracing = false
	reg := obs.NewRegistry()
	exec := Executor{Parallelism: 1, Batch: BatchOn,
		Obs: &ObsOptions{Reg: reg}}
	const reps = 6
	if _, _, err := exec.Series(context.Background(), spec, reps); err != nil {
		t.Fatal(err)
	}
	find := func(name string) uint64 {
		return reg.Counter(name, "").Value()
	}
	if got := find("repro_sim_snapshots_total"); got != 1 {
		t.Errorf("snapshots = %d, want 1 (one world, sequential)", got)
	}
	if got := find("repro_sim_batched_reps_total"); got != reps-1 {
		t.Errorf("batched reps = %d, want %d", got, reps-1)
	}
	// Warm reps reuse pooled timers and tasks: total fresh materializations
	// must be far below reps * (first rep's allocations). The first rep
	// necessarily allocates; later reps may allocate a handful when a rep
	// needs more concurrent timers than any before it.
	cow := find("repro_sim_cow_copies_total")
	if cow == 0 {
		t.Error("cow copies = 0, want > 0 (the first rep materializes everything)")
	}
	firstRep := cowForSingleRep(t, spec)
	if cow > firstRep+firstRep/2 {
		t.Errorf("cow copies = %d over %d reps, want near one rep's %d (pools not reused?)",
			cow, reps, firstRep)
	}
}

// cowForSingleRep measures the fresh materializations of one cold rep.
func cowForSingleRep(t *testing.T, spec Spec) uint64 {
	t.Helper()
	plan, err := mitigate.Apply(spec.Strategy, spec.Platform.Topo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := newWorld(worldKeyFor(spec), true).run(spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	return res.CowCopies
}

// TestWorldPoolKeying verifies worlds are only shared between specs with
// the same topology and scheduler options.
func TestWorldPoolKeying(t *testing.T) {
	spec := batchTestSpec(t)
	k1 := worldKeyFor(spec)
	other := spec
	p2 := *spec.Platform
	p2.SchedOpt.RTThrottle = !p2.SchedOpt.RTThrottle
	other.Platform = &p2
	k2 := worldKeyFor(other)
	if k1 == k2 {
		t.Fatal("different scheduler options produced the same world key")
	}
	pool := NewWorldPool()
	w := newWorld(k1, true)
	pool.put(w)
	if got := pool.get(k2); got != nil {
		t.Fatal("pool returned a world for a different key")
	}
	if got := pool.get(k1); got != w {
		t.Fatal("pool lost the world for its own key")
	}
}
