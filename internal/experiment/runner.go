// Package experiment orchestrates the paper's evaluation: single simulated
// executions (traced or not, with or without noise injection), the
// three-stage injector pipeline over trace sets, the baseline and injection
// studies behind Tables 1-7, and the A64FX motivation figures.
package experiment

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpusched"
	"repro/internal/mitigate"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/omprt"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/syclrt"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// noiseHorizon bounds noise generation; effectively "forever" relative to
// any run.
const noiseHorizon = sim.Time(1) << 60

// Models lists the two programming models under comparison.
var Models = []string{"omp", "sycl"}

// Spec describes one simulated execution.
type Spec struct {
	// Platform supplies machine, noise profile, and scheduler options.
	Platform *platform.Platform
	// Workload is the cost model to execute.
	Workload workloads.Workload
	// Model selects the runtime: "omp" or "sycl".
	Model string
	// Strategy is the mitigation configuration.
	Strategy mitigate.Strategy
	// Seed drives all randomness of the run.
	Seed uint64
	// Tracing enables the osnoise-style tracer (with its small overhead).
	Tracing bool
	// Inject, when non-nil, replays this noise configuration during the
	// run (stage 3 of the injector).
	Inject *core.Config
	// PinInjectors pins injector processes to their configured CPUs
	// (ablation; the paper leaves them unpinned).
	PinInjectors bool
	// NoiseScale multiplies the natural noise intensity; 0 means 1.0.
	NoiseScale float64
	// NoiseSource, when non-empty, names one noise source class (see
	// noise.SourceClasses) to scale by SourceScale while every other
	// source stays at its natural intensity — the differential probe the
	// bottleneck analysis sweeps. Applied after NoiseScale/Runlevel3.
	NoiseSource string
	// SourceScale is the intensity factor for NoiseSource; ignored when
	// NoiseSource is empty. A factor of 1 leaves natural sources untouched
	// (the bandwidth class still seeds its synthetic hog at base rate).
	SourceScale float64
	// Runlevel3 disables GUI noise, as in the paper's re-runs.
	Runlevel3 bool
	// OMP / SYCL override the runtime model configs (nil = defaults).
	OMP  *omprt.Config
	SYCL *syclrt.Config
	// DLRuntime/DLPeriod, when positive, spawn every workload thread under
	// SCHED_DEADLINE with this per-thread CBS reservation (runtime of CPU
	// per period) — the deadline-class mitigation. Zero leaves threads in
	// the fair class. Applied on top of OMP/SYCL config overrides.
	DLRuntime sim.Time
	DLPeriod  sim.Time
	// Obs, when non-nil, attaches a passive observability recorder to the
	// run (spans, flight ring, registry counters). Unlike Tracing it steals
	// no simulated time: results are byte-identical with or without it.
	Obs *obs.Options
}

// Result is the outcome of one execution.
type Result struct {
	// ExecTime is the workload's execution time.
	ExecTime sim.Time
	// Trace is the recorded trace (nil unless Spec.Tracing).
	Trace *trace.Trace
	// InjectedAll reports whether every configured noise event was
	// injected before the workload finished.
	InjectedAll bool
	// InjectorCPUTime is the total CPU time injector processes consumed;
	// InjectorOnWorkload is the share that landed on CPUs the workload
	// was allowed to use. Their difference is what the housekeeping
	// cores absorbed. Zero unless Spec.Inject was set.
	InjectorCPUTime    sim.Time
	InjectorOnWorkload sim.Time
	// Scheduler kernel counters: ContextSwitches is dispatches;
	// GoroutineHandoffs is requests fetched over the coroutine channel
	// handshake, InlineDispatches requests served by inline task programs
	// on the engine thread. Their ratio shows how much task traffic took
	// the fast path (noiselab -v prints them).
	ContextSwitches   uint64
	GoroutineHandoffs uint64
	InlineDispatches  uint64
	// Batch-execution counters (noiselab -v prints them): Snapshots is 1
	// when this rep built a fresh world (engine + scheduler constructed and
	// snapshotted), BatchedReps is 1 when it reused a warm pooled world,
	// and CowCopies counts the fresh materializations — timer and task
	// structs allocated because the world's pools had no recycled struct to
	// hand out, i.e. the copies performed on first write. A warm world runs
	// a rep with CowCopies near zero.
	Snapshots   uint64
	CowCopies   uint64
	BatchedReps uint64
	// Obs is the run's observability recorder (nil unless Spec.Obs). On a
	// deadlock failure it is returned alongside the error so callers can
	// dump the flight ring.
	Obs *obs.Recorder
}

// AbsorbedFraction returns the share of injected noise that landed outside
// the workload's CPUs (absorbed by housekeeping), 0 when nothing was
// injected.
func (r Result) AbsorbedFraction() float64 {
	if r.InjectorCPUTime <= 0 {
		return 0
	}
	return float64(r.InjectorCPUTime-r.InjectorOnWorkload) / float64(r.InjectorCPUTime)
}

// RunOnce executes one simulated run.
func RunOnce(spec Spec) (Result, error) {
	if spec.Platform == nil || spec.Workload == nil {
		return Result{}, fmt.Errorf("experiment: spec needs platform and workload")
	}
	plan, err := mitigate.Apply(spec.Strategy, spec.Platform.Topo)
	if err != nil {
		return Result{}, err
	}
	return runOnceWithPlan(spec, plan)
}

// runOnceWithPlan executes one run with an explicit execution plan,
// bypassing strategy derivation (used by the thread-count sweeps). It
// builds a one-shot world — the same code path batched series reuse, minus
// the end-of-run fork a pooled world performs.
func runOnceWithPlan(spec Spec, plan *mitigate.Plan) (Result, error) {
	return newWorld(worldKeyFor(spec), false).run(spec, plan)
}

// publishRunCounters publishes the run's kernel counters to the shared obs
// registry — the one export path for engine, scheduler, noise, and recorder
// counters (noiselab -obs and the daemon both render it).
func publishRunCounters(reg *obs.Registry, eng *sim.Engine, sched *cpusched.Scheduler,
	gen *noise.Generator, rec *obs.Recorder, snapshots, cowCopies, batchedReps uint64) {
	reg.Counter("repro_runs_total", "Completed simulation runs.").Inc()
	reg.Counter("repro_sim_steps_total", "Engine events processed.").Add(eng.Stats().Steps)
	reg.Counter("repro_sched_context_switches_total", "Task dispatches.").Add(sched.ContextSwitches)
	reg.Counter("repro_sched_inline_dispatches_total",
		"Requests served by inline task programs on the engine thread.").Add(sched.InlineDispatches)
	reg.Counter("repro_sched_goroutine_handoffs_total",
		"Requests fetched over the coroutine channel handshake.").Add(sched.GoroutineHandoffs)
	reg.Counter("repro_sched_preemptions_total", "Involuntary context switches.").Add(sched.TotalPreemptions())
	reg.Counter("repro_sched_migrations_total", "Cross-CPU task migrations.").Add(sched.TotalMigrations())
	reg.Counter("repro_noise_tasks_spawned_total", "Noise tasks spawned.").Add(uint64(gen.Spawned))
	reg.Counter("repro_noise_irqs_total", "Interrupts injected.").Add(uint64(gen.IRQs))
	reg.Counter("repro_obs_events_total", "Observability events recorded.").Add(rec.Total())
	reg.Counter("repro_obs_events_dropped_total",
		"Timeline events dropped by the buffer cap.").Add(rec.Dropped())
	reg.Counter("repro_sim_snapshots_total",
		"World construction snapshots captured (cold reps).").Add(snapshots)
	reg.Counter("repro_sim_cow_copies_total",
		"Fresh timer/task materializations on first write (pool misses).").Add(cowCopies)
	reg.Counter("repro_sim_batched_reps_total",
		"Reps executed in a reused warm world.").Add(batchedReps)
}

// RunSeries executes reps runs with index-derived seeds and returns the
// execution times (and traces when tracing). It delegates to the default
// Executor, fanning reps over a worker pool; see Executor for the
// determinism guarantees and the parallelism knobs.
func RunSeries(spec Spec, reps int) ([]sim.Time, []*trace.Trace, error) {
	return Executor{}.Series(context.Background(), spec, reps)
}
