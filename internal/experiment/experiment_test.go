package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/mitigate"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func tinyPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	return platform.MustNew(machine.TinyTest)
}

func tinyWorkload(t *testing.T, name string) workloads.Workload {
	t.Helper()
	w, err := workloads.ByName(name, "small")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunOnceBasics(t *testing.T) {
	p := tinyPlatform(t)
	res, err := RunOnce(Spec{
		Platform: p,
		Workload: tinyWorkload(t, "nbody"),
		Model:    "omp",
		Strategy: mitigate.Rm,
		Seed:     1,
		Tracing:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime <= 0 {
		t.Fatal("zero exec time")
	}
	if res.Trace == nil || len(res.Trace.Events) == 0 {
		t.Fatal("tracing produced no events")
	}
	if res.Trace.Workload != "nbody" || res.Trace.Model != "omp" || res.Trace.Strategy != "Rm" {
		t.Fatalf("trace labels: %+v", res.Trace)
	}
}

func TestRunOnceDeterministic(t *testing.T) {
	p := tinyPlatform(t)
	spec := Spec{
		Platform: p, Workload: tinyWorkload(t, "minife"),
		Model: "sycl", Strategy: mitigate.RmHK, Seed: 42,
	}
	a, err := RunOnce(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnce(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime {
		t.Fatalf("same seed, different exec: %v vs %v", a.ExecTime, b.ExecTime)
	}
	spec.Seed = 43
	c, err := RunOnce(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.ExecTime == a.ExecTime {
		t.Fatal("different seed should perturb exec time")
	}
}

func TestRunOnceErrors(t *testing.T) {
	p := tinyPlatform(t)
	if _, err := RunOnce(Spec{}); err == nil {
		t.Fatal("empty spec should error")
	}
	if _, err := RunOnce(Spec{Platform: p, Workload: tinyWorkload(t, "nbody"), Model: "tbb"}); err == nil {
		t.Fatal("unknown model should error")
	}
	if _, err := RunOnce(Spec{Platform: p, Workload: tinyWorkload(t, "nbody"), Model: "omp",
		Strategy: mitigate.Rm.WithSMT()}); err == nil {
		t.Fatal("SMT on non-SMT platform should error")
	}
}

func TestRunSeriesVaries(t *testing.T) {
	p := tinyPlatform(t)
	times, traces, err := RunSeries(Spec{
		Platform: p, Workload: tinyWorkload(t, "nbody"),
		Model: "omp", Strategy: mitigate.Rm, Seed: 5, Tracing: true,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 5 || len(traces) != 5 {
		t.Fatalf("series lengths: %d %d", len(times), len(traces))
	}
	allSame := true
	for _, tt := range times[1:] {
		if tt != times[0] {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("noise should make reps differ")
	}
}

func TestPipelineProducesConfig(t *testing.T) {
	p := tinyPlatform(t)
	pl := Pipeline{
		Spec: Spec{
			Platform: p, Workload: tinyWorkload(t, "nbody"),
			Model: "omp", Strategy: mitigate.Rm, Seed: 7,
		},
		CollectRuns: 12,
		Improved:    true,
	}
	pr, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Traces) != 12 {
		t.Fatalf("collected %d traces", len(pr.Traces))
	}
	if pr.Worst.ExecTime < pr.Traces[0].ExecTime && pr.WorstIndex == 0 {
		t.Fatal("worst-case selection broken")
	}
	for _, tr := range pr.Traces {
		if tr.ExecTime > pr.Worst.ExecTime {
			t.Fatal("worst is not the maximum")
		}
	}
	// Refinement never adds noise.
	if pr.Refined.TotalNoise() > pr.Worst.TotalNoise() {
		t.Fatal("refined trace has more noise than worst case")
	}
	if err := pr.Config.Validate(); err != nil {
		t.Fatal(err)
	}
	if pr.Config.Window != pr.Worst.ExecTime {
		t.Fatal("config window should be the worst-case exec time")
	}
	if pr.BaselineMean <= 0 {
		t.Fatal("baseline mean missing")
	}
}

func TestPipelineRejectsTooFewRuns(t *testing.T) {
	if _, err := (Pipeline{CollectRuns: 1}).Run(); err == nil {
		t.Fatal("pipeline must require >= 2 runs")
	}
}

func TestInjectionReducesToBaselineWithEmptyConfig(t *testing.T) {
	// Injecting an (almost) empty config should change nothing much.
	p := tinyPlatform(t)
	w := tinyWorkload(t, "nbody")
	base, err := RunOnce(Spec{Platform: p, Workload: w, Model: "omp", Strategy: mitigate.Rm, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tiny := &core.Config{
		Window: sim.Second,
		CPUs: []core.CPUEvents{{CPU: 0, Events: []core.NoiseEvent{{
			Start: sim.Millisecond, Duration: sim.Microsecond,
			Policy: "SCHED_FIFO", RTPrio: 50,
			Class: cpusched.ClassIRQ, Source: "x",
		}}}},
	}
	inj, err := RunOnce(Spec{Platform: p, Workload: w, Model: "omp", Strategy: mitigate.Rm, Seed: 3,
		Inject: tiny})
	if err != nil {
		t.Fatal(err)
	}
	diff := inj.ExecTime - base.ExecTime
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.02*float64(base.ExecTime) {
		t.Fatalf("1us injection changed exec by %v (base %v)", diff, base.ExecTime)
	}
}

func TestBaselineStudyShape(t *testing.T) {
	p := tinyPlatform(t)
	res, err := BaselineStudy{Platform: p, Workload: "nbody", Reps: 3, Seed: 1}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 12 { // 2 models x 6 strategies
		t.Fatalf("cells = %d, want 12", len(res.Cells))
	}
	for k, c := range res.Cells {
		if c.Summary.N != 3 || c.Summary.Mean <= 0 {
			t.Fatalf("cell %s: %+v", k, c.Summary)
		}
	}
	if _, ok := res.Cells[Key("omp", mitigate.TPHK2)]; !ok {
		t.Fatal("missing omp/TPHK2 cell")
	}
}

func TestTracingOverheadPositiveAndSmall(t *testing.T) {
	p := tinyPlatform(t)
	rows, err := TracingOverhead(p, []string{"nbody"}, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	// Same seeds with/without tracing: the only difference is overhead,
	// which must be positive and small.
	if r.IncreasePct <= 0 {
		t.Fatalf("tracing overhead should be positive: %+v", r)
	}
	if r.IncreasePct > 5 {
		t.Fatalf("tracing overhead implausibly large: %+v", r)
	}
}

func TestInjectionStudyStructure(t *testing.T) {
	p := tinyPlatform(t)
	st := InjectionStudy{
		Platforms: []*platform.Platform{p},
		Workload:  "nbody",
		Reps:      RepCounts{Collect: 10, Baseline: 3, Inject: 3},
		Seed:      2,
		Improved:  true,
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 1 {
		t.Fatalf("sections = %d", len(res.Sections))
	}
	sec := res.Sections[0]
	// Non-SMT platform: 2 models x 1 config = 2 rows.
	if len(sec.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(sec.Rows))
	}
	for _, row := range sec.Rows {
		if len(row.Cells) != 6 {
			t.Fatalf("row %s cells = %d", row.Label, len(row.Cells))
		}
		for _, c := range row.Cells {
			if c.MeanSec <= 0 || c.BaseSec <= 0 {
				t.Fatalf("row %s has empty cells: %+v", row.Label, c)
			}
		}
	}
	if len(res.Configs[p.Name]) != 1 || len(res.Anomaly[p.Name]) != 1 {
		t.Fatal("configs/anomaly not recorded")
	}
	if !strings.Contains(sec.Rows[0].Label, "#1") {
		t.Fatalf("label %q should carry config id", sec.Rows[0].Label)
	}
}

func TestInjectionStudySMTRows(t *testing.T) {
	p := platform.MustNew(machine.TinySMTTest)
	st := InjectionStudy{
		Platforms: []*platform.Platform{p},
		Workload:  "nbody",
		Reps:      RepCounts{Collect: 8, Baseline: 2, Inject: 2},
		Seed:      3,
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	// SMT platform: 2 models x 2 smt modes = 4 rows.
	if got := len(res.Sections[0].Rows); got != 4 {
		t.Fatalf("rows = %d, want 4", got)
	}
	sawSMT := false
	for _, row := range res.Sections[0].Rows {
		if row.SMT {
			sawSMT = true
			if !strings.Contains(row.Label, "SMT") {
				t.Fatalf("SMT row label %q", row.Label)
			}
		}
	}
	if !sawSMT {
		t.Fatal("no SMT rows")
	}
}

func TestAccuracyStudyTiny(t *testing.T) {
	cases := []AccuracyCase{{
		Workload: "nbody",
		Platform: machine.TinyTest,
		Source:   ConfigSource{Model: "omp", Strategy: mitigate.Rm, ID: 1},
	}}
	entries, err := AccuracyStudy{
		Cases: cases,
		Reps:  RepCounts{Collect: 15, Inject: 5},
		Seed:  4,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0]
	if e.AnomalySec <= 0 || e.InjectedSec <= 0 {
		t.Fatalf("entry: %+v", e)
	}
	if e.AccuracyPct < 0 || e.AccuracyPct > 100 {
		t.Fatalf("accuracy out of range: %+v", e)
	}
	if MeanAccuracy(entries) != e.AccuracyPct {
		t.Fatal("mean of one entry should equal it")
	}
	if MeanAccuracy(nil) != 0 {
		t.Fatal("empty mean accuracy")
	}
}

func TestAccuracyHelper(t *testing.T) {
	abs, signed := Accuracy(1.1, 1.0)
	if abs < 0.0999 || abs > 0.1001 || signed < 0 {
		t.Fatalf("Accuracy(1.1, 1) = %v %v", abs, signed)
	}
	abs, signed = Accuracy(0.9, 1.0)
	if abs < 0.0999 || abs > 0.1001 || signed > 0 {
		t.Fatalf("Accuracy(0.9, 1) = %v %v", abs, signed)
	}
	if a, s := Accuracy(1, 0); a != 0 || s != 0 {
		t.Fatal("zero anomaly should not divide")
	}
}

func TestAggregateChange(t *testing.T) {
	mk := func(model string, vals []float64) InjectRow {
		row := InjectRow{Model: model}
		for _, v := range vals {
			row.Cells = append(row.Cells, InjectCell{ChangePct: v})
		}
		return row
	}
	res := &InjectionResult{Sections: []InjectSection{{
		Rows: []InjectRow{
			mk("omp", []float64{10, 20, 30, 40, 50, 60}),
			mk("omp", []float64{30, 40, 50, 60, 70, 80}),
			mk("sycl", []float64{1, 2, 3, 4, 5, 6}),
		},
	}}}
	agg := AggregateChange([]*InjectionResult{res})
	if agg["omp"][0] != 20 || agg["omp"][5] != 70 {
		t.Fatalf("omp agg: %v", agg["omp"])
	}
	if agg["sycl"][2] != 3 {
		t.Fatalf("sycl agg: %v", agg["sycl"])
	}
}

func TestPaperAccuracyCases(t *testing.T) {
	cases := PaperAccuracyCases()
	if len(cases) != 10 {
		t.Fatalf("paper has 10 worst-case traces, got %d", len(cases))
	}
	intel, amd := 0, 0
	for _, c := range cases {
		switch c.Platform {
		case machine.Intel9700KF:
			intel++
		case machine.AMD9950X3D:
			amd++
		}
		if c.Source.Strategy.SMT && c.Platform != machine.AMD9950X3D {
			t.Fatalf("SMT case on non-SMT platform: %+v", c)
		}
	}
	if intel != 6 || amd != 4 {
		t.Fatalf("paper: six Intel + four AMD traces, got %d + %d", intel, amd)
	}
}

func TestRepCountsScale(t *testing.T) {
	r := RepCounts{Collect: 100, Baseline: 10, Inject: 10}.Scale(0.1)
	if r.Collect != 10 || r.Baseline != 2 || r.Inject != 2 {
		t.Fatalf("scaled: %+v", r)
	}
}

func TestConfigSourceLabel(t *testing.T) {
	c := ConfigSource{Model: "omp", Strategy: mitigate.Rm.WithSMT()}
	if c.Label() != "Rm-SMT-OMP" {
		t.Fatalf("label = %q", c.Label())
	}
	c2 := ConfigSource{Model: "sycl", Strategy: mitigate.RmHK2}
	if c2.Label() != "RmHK2-SYCL" {
		t.Fatalf("label = %q", c2.Label())
	}
}

func TestSeedForDistinct(t *testing.T) {
	a := seedFor(1, "x", "y")
	b := seedFor(1, "x", "z")
	c := seedFor(2, "x", "y")
	if a == b || a == c {
		t.Fatal("seedFor should separate phases and bases")
	}
	if a != seedFor(1, "x", "y") {
		t.Fatal("seedFor must be deterministic")
	}
}

// TestAbsorptionFraction quantifies the housekeeping mechanism: with a
// spare core, more of the injected noise lands off the workload's CPUs.
func TestAbsorptionFraction(t *testing.T) {
	p := tinyPlatform(t)
	w := tinyWorkload(t, "nbody")
	cfg := &core.Config{
		Window: sim.Second,
		CPUs: []core.CPUEvents{{CPU: 0, Events: []core.NoiseEvent{
			{Start: sim.Millisecond, Duration: 5 * sim.Millisecond,
				Policy: "SCHED_OTHER", Class: cpusched.ClassThread, Source: "hog"},
			{Start: 10 * sim.Millisecond, Duration: 5 * sim.Millisecond,
				Policy: "SCHED_OTHER", Class: cpusched.ClassThread, Source: "hog"},
		}}},
	}
	run := func(strat mitigate.Strategy) Result {
		res, err := RunOnce(Spec{Platform: p, Workload: w, Model: "omp",
			Strategy: strat, Seed: 3, Inject: cfg})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(mitigate.Rm)  // all 4 CPUs busy: nothing to absorb into
	hk := run(mitigate.RmHK2) // 1 core free on the tiny machine
	if full.InjectorCPUTime <= 0 || hk.InjectorCPUTime <= 0 {
		t.Fatal("injector CPU time not accounted")
	}
	if hk.AbsorbedFraction() <= full.AbsorbedFraction() {
		t.Fatalf("housekeeping should absorb more: hk=%.2f full=%.2f",
			hk.AbsorbedFraction(), full.AbsorbedFraction())
	}
	if hk.AbsorbedFraction() < 0.9 {
		t.Fatalf("idle housekeeping core should absorb nearly all thread noise: %.2f",
			hk.AbsorbedFraction())
	}
	if (Result{}).AbsorbedFraction() != 0 {
		t.Fatal("zero result should have zero absorption")
	}
}
