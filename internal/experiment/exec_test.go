package experiment

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mitigate"
)

func TestSeedAtMatchesHistoricalStride(t *testing.T) {
	if seedAt(7, 0) != 7 {
		t.Fatalf("seedAt(7,0) = %d", seedAt(7, 0))
	}
	if got, want := seedAt(7, 3), uint64(7+3*1000003); got != want {
		t.Fatalf("seedAt(7,3) = %d, want %d", got, want)
	}
}

// resetParallelEnv clears the cached REPRO_PARALLEL resolution so a test
// can exercise a fresh read (the production path resolves it once per
// process).
func resetParallelEnv() {
	parallelEnvOnce = sync.Once{}
	parallelEnvVal = 0
}

func TestExecutorWorkersResolution(t *testing.T) {
	defer resetParallelEnv()
	if w := (Executor{Parallelism: 3}).Workers(); w != 3 {
		t.Fatalf("explicit parallelism: %d", w)
	}
	if w := (Executor{Parallelism: -1}).Workers(); w != 1 {
		t.Fatalf("negative parallelism should mean sequential: %d", w)
	}
	t.Setenv("REPRO_PARALLEL", "5")
	resetParallelEnv()
	if w := (Executor{}).Workers(); w != 5 {
		t.Fatalf("REPRO_PARALLEL: %d", w)
	}
	t.Setenv("REPRO_PARALLEL", "bogus")
	resetParallelEnv()
	if w := (Executor{}).Workers(); w < 1 {
		t.Fatalf("fallback workers: %d", w)
	}
}

// TestParseParallelEnvTable pins the validation of REPRO_PARALLEL values:
// empty means unset (no warning); zero, negatives, and garbage are invalid
// (warned, fall back); positive integers are used.
func TestParseParallelEnvTable(t *testing.T) {
	cases := []struct {
		in       string
		want     int
		wantWarn bool
	}{
		{"", 0, false},
		{"0", 0, true},
		{"-3", 0, true},
		{"abc", 0, true},
		{"5", 5, false},
		{"2.5", 0, true},
	}
	for _, c := range cases {
		n, warning := parseParallelEnv(c.in)
		if n != c.want {
			t.Errorf("parseParallelEnv(%q) = %d, want %d", c.in, n, c.want)
		}
		if (warning != "") != c.wantWarn {
			t.Errorf("parseParallelEnv(%q) warning = %q, wantWarn %v", c.in, warning, c.wantWarn)
		}
		if warning != "" && !strings.Contains(warning, c.in) {
			t.Errorf("warning %q does not name the offending value %q", warning, c.in)
		}
	}
}

// TestWorkersInvalidEnvWarnsOnce: an invalid REPRO_PARALLEL must surface
// exactly one stderr diagnostic, and the env var must be read once, not on
// every Workers call.
func TestWorkersInvalidEnvWarnsOnce(t *testing.T) {
	t.Setenv("REPRO_PARALLEL", "abc")
	resetParallelEnv()
	var buf bytes.Buffer
	oldOut := warnOut
	warnOut = &buf
	defer func() { warnOut = oldOut; resetParallelEnv() }()

	want := runtime.GOMAXPROCS(0)
	for i := 0; i < 3; i++ {
		if w := (Executor{}).Workers(); w != want {
			t.Fatalf("Workers() = %d, want GOMAXPROCS %d", w, want)
		}
	}
	if n := strings.Count(buf.String(), "REPRO_PARALLEL"); n != 1 {
		t.Fatalf("warning emitted %d times, want once:\n%s", n, buf.String())
	}
	// The resolution is cached: changing the env without a reset must not
	// change the outcome (no per-call env read).
	t.Setenv("REPRO_PARALLEL", "7")
	if w := (Executor{}).Workers(); w != want {
		t.Fatalf("Workers() re-read the env: got %d", w)
	}
}

// TestRunBlockedOnRepDoesNotStallWorkers is the regression test for the
// OnRep-under-mutex bug: a callback that blocks must not prevent the other
// workers from completing their reps (pre-fix, the callback held the pool
// mutex, so every worker stalled at the next lock acquisition).
func TestRunBlockedOnRepDoesNotStallWorkers(t *testing.T) {
	const reps = 8
	release := make(chan struct{})
	blocked := make(chan struct{})
	perRep := make(chan struct{}, reps)
	var calls []int
	var mu sync.Mutex
	e := Executor{Parallelism: 4, OnRep: func(done, total int) {
		mu.Lock()
		calls = append(calls, done)
		mu.Unlock()
		if done == 1 {
			close(blocked)
			<-release
		}
	}}
	errCh := make(chan error, 1)
	go func() {
		errCh <- e.run(context.Background(), reps, func(i int) error {
			perRep <- struct{}{}
			return nil
		})
	}()
	<-blocked
	// With the first callback still blocked, every rep must still finish.
	for i := 0; i < reps; i++ {
		select {
		case <-perRep:
		case <-time.After(10 * time.Second):
			close(release)
			t.Fatalf("only %d of %d reps ran while OnRep was blocked", i, reps)
		}
	}
	close(release)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != reps {
		t.Fatalf("OnRep called %d times, want %d: %v", len(calls), reps, calls)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("OnRep sequence %v not monotonic", calls)
		}
	}
}

// TestSeriesParallelDeterminism is the tentpole guarantee: for a fixed
// seed, a traced series must produce byte-identical execution times and
// identical traces at parallelism 1 and 8.
func TestSeriesParallelDeterminism(t *testing.T) {
	p := tinyPlatform(t)
	spec := Spec{
		Platform: p, Workload: tinyWorkload(t, "nbody"),
		Model: "omp", Strategy: mitigate.Rm, Seed: 99, Tracing: true,
	}
	const reps = 8
	seqT, seqTr, err := (Executor{Parallelism: 1}).Series(context.Background(), spec, reps)
	if err != nil {
		t.Fatal(err)
	}
	parT, parTr, err := (Executor{Parallelism: 8}).Series(context.Background(), spec, reps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqT, parT) {
		t.Fatalf("execution times differ:\nseq: %v\npar: %v", seqT, parT)
	}
	if len(seqTr) != reps || len(parTr) != reps {
		t.Fatalf("trace counts: seq %d par %d", len(seqTr), len(parTr))
	}
	for i := range seqTr {
		if !reflect.DeepEqual(seqTr[i], parTr[i]) {
			t.Fatalf("trace %d differs between parallelism 1 and 8", i)
		}
	}
}

// TestSeriesMatchesLegacySequential pins the parallel layer to the exact
// seed derivation the sequential loop used: per-rep RunOnce at
// spec.Seed + i*1000003.
func TestSeriesMatchesLegacySequential(t *testing.T) {
	p := tinyPlatform(t)
	spec := Spec{
		Platform: p, Workload: tinyWorkload(t, "minife"),
		Model: "sycl", Strategy: mitigate.RmHK, Seed: 11,
	}
	const reps = 4
	times, _, err := (Executor{Parallelism: 4}).Series(context.Background(), spec, reps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < reps; i++ {
		s := spec
		s.Seed = spec.Seed + uint64(i)*1000003
		res, err := RunOnce(s)
		if err != nil {
			t.Fatal(err)
		}
		if times[i] != res.ExecTime {
			t.Fatalf("rep %d: series %v, RunOnce %v", i, times[i], res.ExecTime)
		}
	}
}

// TestSeriesLowestIndexErrorWins: when several reps fail concurrently, the
// error of the lowest rep index must be reported.
func TestSeriesLowestIndexErrorWins(t *testing.T) {
	p := tinyPlatform(t)
	spec := Spec{
		Platform: p, Workload: tinyWorkload(t, "nbody"),
		Model:    "tbb", // unknown model: every rep fails
		Strategy: mitigate.Rm, Seed: 1,
	}
	_, _, err := (Executor{Parallelism: 8}).Series(context.Background(), spec, 8)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "rep 0:") {
		t.Fatalf("lowest-index error should win, got: %v", err)
	}
}

// TestSeriesCancellation: cancelling mid-series must stop promptly (not run
// the full series) and surface the context error.
func TestSeriesCancellation(t *testing.T) {
	p := tinyPlatform(t)
	spec := Spec{
		Platform: p, Workload: tinyWorkload(t, "nbody"),
		Model: "omp", Strategy: mitigate.Rm, Seed: 3,
	}
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	completed := 0
	e := Executor{Parallelism: 2, OnRep: func(done, total int) {
		mu.Lock()
		completed = done
		mu.Unlock()
		cancel() // cancel as soon as the first rep lands
	}}
	const reps = 500
	start := time.Now()
	_, _, err := e.Series(ctx, spec, reps)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled series should error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error should wrap context.Canceled: %v", err)
	}
	mu.Lock()
	c := completed
	mu.Unlock()
	if c >= reps/2 {
		t.Fatalf("cancellation not prompt: %d of %d reps completed", c, reps)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestSeriesRepProgress: OnRep must count every rep exactly once up to the
// total.
func TestSeriesRepProgress(t *testing.T) {
	p := tinyPlatform(t)
	spec := Spec{
		Platform: p, Workload: tinyWorkload(t, "nbody"),
		Model: "omp", Strategy: mitigate.Rm, Seed: 4,
	}
	var mu sync.Mutex
	var seen []int
	e := Executor{Parallelism: 4, OnRep: func(done, total int) {
		if total != 6 {
			t.Errorf("total = %d", total)
		}
		mu.Lock()
		seen = append(seen, done)
		mu.Unlock()
	}}
	if _, _, err := e.Series(context.Background(), spec, 6); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("OnRep called %d times", len(seen))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("OnRep sequence %v not monotonic", seen)
		}
	}
}

// TestStudyCellProgress: a study must report cell progress with a correct
// total through Executor.OnCell.
func TestStudyCellProgress(t *testing.T) {
	p := tinyPlatform(t)
	var mu sync.Mutex
	var labels []string
	lastTotal := 0
	st := BaselineStudy{
		Platform: p, Workload: "nbody", Reps: 2, Seed: 5,
		Exec: Executor{Parallelism: 2, OnCell: func(done, total int, label string) {
			mu.Lock()
			labels = append(labels, label)
			lastTotal = total
			mu.Unlock()
		}},
	}
	if _, err := st.Run(); err != nil {
		t.Fatal(err)
	}
	want := len(Models) * len(mitigate.Columns())
	if lastTotal != want {
		t.Fatalf("cell total = %d, want %d", lastTotal, want)
	}
	if len(labels) != want {
		t.Fatalf("cells reported = %d, want %d", len(labels), want)
	}
}

// TestRunSeriesZeroReps preserves the historical empty-series behaviour.
func TestRunSeriesZeroReps(t *testing.T) {
	p := tinyPlatform(t)
	times, traces, err := RunSeries(Spec{
		Platform: p, Workload: tinyWorkload(t, "nbody"),
		Model: "omp", Strategy: mitigate.Rm, Seed: 1,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 0 || traces != nil {
		t.Fatalf("zero reps: %v %v", times, traces)
	}
}
