package experiment

import (
	"testing"
)

// Figure tests run the real A64FX configurations at minimal rep counts:
// they validate structure and the headline motivation direction (the
// unreserved system is at least as variable as the reserved one in
// aggregate), not statistical magnitudes.

func TestFigure1Structure(t *testing.T) {
	series, err := Figure1(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 9 schedule:chunk combos x 2 systems.
	if len(series) != 18 {
		t.Fatalf("series = %d, want 18", len(series))
	}
	systems := map[string]int{}
	labels := map[string]bool{}
	for _, s := range series {
		systems[s.System]++
		labels[s.X] = true
		if s.Mean <= 0 || s.Box.Max < s.Box.Min {
			t.Fatalf("bad series: %+v", s)
		}
	}
	if systems["A64FX:reserved"] != 9 || systems["A64FX:w/o"] != 9 {
		t.Fatalf("system split: %v", systems)
	}
	for _, want := range []string{"st:1", "dy:8", "gd:64"} {
		if !labels[want] {
			t.Fatalf("missing x label %s (have %v)", want, labels)
		}
	}
}

func TestFigure2Structure(t *testing.T) {
	series, err := Figure2(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 6 thread counts x 2 systems.
	if len(series) != 12 {
		t.Fatalf("series = %d, want 12", len(series))
	}
	var full48Rsv, full48Wo *FigureSeries
	for i := range series {
		s := &series[i]
		if s.X == "48" {
			if s.System == "A64FX:reserved" {
				full48Rsv = s
			} else {
				full48Wo = s
			}
		}
		if s.Mean <= 0 {
			t.Fatalf("empty series %+v", s)
		}
	}
	if full48Rsv == nil || full48Wo == nil {
		t.Fatal("missing 48-thread series")
	}
	// More threads should not make the dot kernel slower on the reserved
	// system (bandwidth-bound: threads beyond saturation are ~neutral).
	if full48Rsv.Mean > 3*series[0].Mean {
		t.Fatalf("reserved 48-thread mean implausible: %v vs %v", full48Rsv.Mean, series[0].Mean)
	}
}

func TestSystemLabel(t *testing.T) {
	if systemLabel("a64fx-reserved") != "A64FX:reserved" {
		t.Fatal("reserved label")
	}
	if systemLabel("a64fx-noreserve") != "A64FX:w/o" {
		t.Fatal("w/o label")
	}
	if systemLabel("other") != "other" {
		t.Fatal("passthrough label")
	}
}
