package experiment

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mitigate"
	"repro/internal/platform"
	"repro/internal/stats"
)

// RepCounts sets how many executions each study phase performs. The paper
// uses Collect/Baseline = 1000 and Inject = 200; defaults here are scaled
// for tractable regeneration and can be raised via the CLI/bench flags.
type RepCounts struct {
	// Collect is the number of traced runs used to hunt the worst case
	// and average the inherent noise (stage 1).
	Collect int
	// Baseline is the rep count for baseline statistics per config.
	Baseline int
	// Inject is the rep count per injection experiment.
	Inject int
}

// DefaultReps returns CI-scale rep counts.
func DefaultReps() RepCounts { return RepCounts{Collect: 150, Baseline: 25, Inject: 25} }

// Scale multiplies all rep counts by f (minimum 2 each).
func (r RepCounts) Scale(f float64) RepCounts {
	s := func(n int) int {
		v := int(float64(n) * f)
		if v < 2 {
			v = 2
		}
		return v
	}
	return RepCounts{Collect: s(r.Collect), Baseline: s(r.Baseline), Inject: s(r.Inject)}
}

// SeedFor derives a deterministic sub-seed for a named phase: the FNV-style
// tag fold every study uses, exported so out-of-package sweeps (the
// bottleneck analysis) derive per-cell seeds on the same schedule the
// studies do.
func SeedFor(base uint64, tags ...string) uint64 {
	return seedFor(base, tags...)
}

// seedFor derives a deterministic sub-seed for a named study phase.
func seedFor(base uint64, tags ...string) uint64 {
	h := base ^ 0x9e3779b97f4a7c15
	for _, t := range tags {
		for i := 0; i < len(t); i++ {
			h ^= uint64(t[i])
			h *= 1099511628211
		}
	}
	return h
}

// ---------------------------------------------------------------------------
// Baseline study (Table 2 and the baselines behind Tables 3-5)
// ---------------------------------------------------------------------------

// BaselineCell is one (model, strategy) baseline measurement.
type BaselineCell struct {
	Model    string
	Strategy mitigate.Strategy
	Summary  stats.Summary // over execution times, in milliseconds
}

// BaselineStudy measures run-to-run variability without injection for every
// model and strategy of one workload on one platform.
type BaselineStudy struct {
	Platform *platform.Platform
	Workload string
	Reps     int
	Seed     uint64
	// SMT additionally measures the SMT-enabled strategies (AMD rows).
	SMT bool
	// Exec is the execution layer; the zero value runs with default
	// parallelism.
	Exec Executor
}

// BaselineResult maps "model/strategy" to its cell.
type BaselineResult struct {
	Workload string
	Platform string
	Cells    map[string]BaselineCell
}

// Key builds the lookup key used by Cells.
func Key(model string, strat mitigate.Strategy) string {
	return model + "/" + strat.Name()
}

// Run executes the study.
func (b BaselineStudy) Run() (*BaselineResult, error) {
	return b.RunContext(context.Background())
}

// RunContext executes the study under ctx; cancellation stops the series
// in flight and surfaces the context error.
func (b BaselineStudy) RunContext(ctx context.Context) (*BaselineResult, error) {
	b.Exec = b.Exec.withWorlds()
	w, err := b.Platform.WorkloadSpec(b.Workload)
	if err != nil {
		return nil, err
	}
	res := &BaselineResult{
		Workload: b.Workload,
		Platform: b.Platform.Name,
		Cells:    make(map[string]BaselineCell),
	}
	strategies := mitigate.Columns()
	if b.SMT {
		for _, s := range mitigate.Columns() {
			strategies = append(strategies, s.WithSMT())
		}
	}
	prog := b.Exec.cells(len(Models) * len(strategies))
	for _, model := range Models {
		for _, strat := range strategies {
			spec := Spec{
				Platform: b.Platform,
				Workload: w,
				Model:    model,
				Strategy: strat,
				Seed:     seedFor(b.Seed, "baseline", b.Workload, model, strat.Name()),
				Tracing:  true,
			}
			times, _, err := b.Exec.Series(ctx, spec, b.Reps)
			if err != nil {
				return nil, fmt.Errorf("baseline %s/%s/%s: %w", b.Workload, model, strat.Name(), err)
			}
			res.Cells[Key(model, strat)] = BaselineCell{
				Model:    model,
				Strategy: strat,
				Summary:  stats.SummarizeTimes(times),
			}
			prog.finish("baseline " + b.Workload + " " + Key(model, strat))
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Worst-case config construction (stage 1+2 for the injection studies)
// ---------------------------------------------------------------------------

// ConfigSource describes which workload configuration a worst-case trace is
// hunted under (the paper's ten configs span several of these).
type ConfigSource struct {
	Model    string
	Strategy mitigate.Strategy
	// ID distinguishes alternate configs (#1, #2) from the same source
	// configuration via different collection seeds.
	ID int
}

// Label renders like "Rm-OMP" / "TPHK-SMT-OMP", the style of Table 7.
func (c ConfigSource) Label() string {
	name := c.Strategy.Name()
	model := "OMP"
	if c.Model == "sycl" {
		model = "SYCL"
	}
	return name + "-" + model
}

// BuildConfig hunts a worst case for the given source configuration and
// generates its injection config.
func BuildConfig(p *platform.Platform, workload string, src ConfigSource,
	collectRuns int, improved bool, seed uint64) (*core.Config, *PipelineResult, error) {
	return BuildConfigExec(context.Background(), Executor{}, p, workload, src, collectRuns, improved, seed)
}

// BuildConfigExec is BuildConfig under an explicit executor and context.
func BuildConfigExec(ctx context.Context, e Executor, p *platform.Platform, workload string,
	src ConfigSource, collectRuns int, improved bool, seed uint64) (*core.Config, *PipelineResult, error) {
	w, err := p.WorkloadSpec(workload)
	if err != nil {
		return nil, nil, err
	}
	pl := Pipeline{
		Spec: Spec{
			Platform: p,
			Workload: w,
			Model:    src.Model,
			Strategy: src.Strategy,
			Seed:     seedFor(seed, "collect", workload, src.Model, src.Strategy.Name(), fmt.Sprint(src.ID)),
		},
		CollectRuns: collectRuns,
		Improved:    improved,
		Exec:        e,
	}
	pr, err := pl.RunContext(ctx)
	if err != nil {
		return nil, nil, err
	}
	return pr.Config, pr, nil
}

// ---------------------------------------------------------------------------
// Injection study (Tables 3-5)
// ---------------------------------------------------------------------------

// InjectCell is one strategy column of an injection row.
type InjectCell struct {
	// MeanSec is the average injected execution time in seconds.
	MeanSec float64
	// ChangePct is the percentage increase vs the matching baseline.
	ChangePct float64
	// BaseSec is the baseline mean in seconds.
	BaseSec float64
	// SD is the injected run standard deviation in ms.
	SD float64
}

// InjectRow is one row of Tables 3-5: a (model, SMT, config#) combination
// across the six strategy columns.
type InjectRow struct {
	Label    string
	Model    string
	SMT      bool
	ConfigID int
	Cells    []InjectCell // indexed like mitigate.Columns()
}

// InjectSection is one platform block of a table.
type InjectSection struct {
	Platform string
	Rows     []InjectRow
}

// InjectionStudy produces one workload's table (3, 4, or 5).
type InjectionStudy struct {
	Platforms []*platform.Platform
	Workload  string
	Reps      RepCounts
	Seed      uint64
	Improved  bool
	// ConfigsPerPlatform is how many alternate worst-case configs (#1,
	// #2, ...) to build per platform; the paper varies this per table.
	ConfigsPerPlatform map[string]int
	// Exec is the execution layer; the zero value runs with default
	// parallelism.
	Exec Executor
}

// InjectionResult is the full table plus the artifacts behind it.
type InjectionResult struct {
	Workload string
	Sections []InjectSection
	// Configs maps platform name to its ordered configs.
	Configs map[string][]*core.Config
	// Anomaly maps platform name to each config's worst-case exec (sec).
	Anomaly map[string][]float64
}

// configsFor resolves how many alternate configs a platform gets.
func (st InjectionStudy) configsFor(p *platform.Platform) int {
	if st.ConfigsPerPlatform != nil {
		if v, ok := st.ConfigsPerPlatform[p.Name]; ok {
			return v
		}
	}
	return 1
}

// cellCount is the number of progress cells the study will report: one per
// worst-case pipeline plus one per (row, strategy column).
func (st InjectionStudy) cellCount() int {
	total := 0
	for _, p := range st.Platforms {
		nCfg := st.configsFor(p)
		smtModes := 1
		if p.HasSMT {
			smtModes = 2
		}
		total += nCfg + nCfg*len(Models)*smtModes*len(mitigate.Columns())
	}
	return total
}

// Run executes the study.
func (st InjectionStudy) Run() (*InjectionResult, error) {
	return st.RunContext(context.Background())
}

// RunContext executes the study under ctx.
func (st InjectionStudy) RunContext(ctx context.Context) (*InjectionResult, error) {
	st.Exec = st.Exec.withWorlds()
	out := &InjectionResult{
		Workload: st.Workload,
		Configs:  make(map[string][]*core.Config),
		Anomaly:  make(map[string][]float64),
	}
	prog := st.Exec.cells(st.cellCount())
	for _, p := range st.Platforms {
		nCfg := st.configsFor(p)
		// Stage 1+2: build the worst-case configs (paper: predominantly
		// from OpenMP roaming runs).
		var cfgs []*core.Config
		for id := 1; id <= nCfg; id++ {
			cfg, pr, err := BuildConfigExec(ctx, st.Exec, p, st.Workload,
				ConfigSource{Model: "omp", Strategy: mitigate.Rm, ID: id},
				st.Reps.Collect, st.Improved, st.Seed)
			if err != nil {
				return nil, err
			}
			cfgs = append(cfgs, cfg)
			out.Anomaly[p.Name] = append(out.Anomaly[p.Name], pr.Worst.ExecTime.Seconds())
			prog.finish(fmt.Sprintf("config %s #%d", p.Name, id))
		}
		out.Configs[p.Name] = cfgs

		sec := InjectSection{Platform: p.Name}
		smtModes := []bool{false}
		if p.HasSMT {
			smtModes = append(smtModes, true)
		}
		for id, cfg := range cfgs {
			for _, model := range Models {
				for _, smt := range smtModes {
					row, err := st.injectRow(ctx, prog, p, model, smt, id+1, cfg)
					if err != nil {
						return nil, err
					}
					sec.Rows = append(sec.Rows, *row)
				}
			}
		}
		out.Sections = append(out.Sections, sec)
	}
	return out, nil
}

func (st InjectionStudy) injectRow(ctx context.Context, prog *cellTracker, p *platform.Platform, model string, smt bool, cfgID int, cfg *core.Config) (*InjectRow, error) {
	wl, err := p.WorkloadSpec(st.Workload)
	if err != nil {
		return nil, err
	}
	label := "OMP"
	if model == "sycl" {
		label = "SYCL"
	}
	if smt {
		label += " SMT"
	}
	label += fmt.Sprintf(" #%d", cfgID)
	row := &InjectRow{Label: label, Model: model, SMT: smt, ConfigID: cfgID}
	for _, strat := range mitigate.Columns() {
		if smt {
			strat = strat.WithSMT()
		}
		baseSpec := Spec{
			Platform: p, Workload: wl, Model: model, Strategy: strat,
			Seed:    seedFor(st.Seed, "ibase", st.Workload, model, strat.Name()),
			Tracing: true,
		}
		baseTimes, _, err := st.Exec.Series(ctx, baseSpec, st.Reps.Baseline)
		if err != nil {
			return nil, err
		}
		injSpec := baseSpec
		injSpec.Tracing = false
		injSpec.Inject = cfg
		injSpec.Seed = seedFor(st.Seed, "inj", st.Workload, model, strat.Name(), fmt.Sprint(cfgID))
		injTimes, _, err := st.Exec.Series(ctx, injSpec, st.Reps.Inject)
		if err != nil {
			return nil, err
		}
		base := stats.SummarizeTimes(baseTimes)
		inj := stats.SummarizeTimes(injTimes)
		row.Cells = append(row.Cells, InjectCell{
			MeanSec:   inj.Mean / 1000,
			BaseSec:   base.Mean / 1000,
			ChangePct: stats.RelChange(base.Mean, inj.Mean),
			SD:        inj.SD,
		})
		prog.finish(fmt.Sprintf("inject %s %s %s %s", p.Name, st.Workload, label, strat.Name()))
	}
	return row, nil
}

// ---------------------------------------------------------------------------
// Tracing overhead (Table 1)
// ---------------------------------------------------------------------------

// OverheadRow is one workload's tracing-overhead measurement.
type OverheadRow struct {
	Workload    string
	OffSec      float64
	OnSec       float64
	IncreasePct float64
}

// TracingOverhead measures baseline executions with tracing off and on
// (OMP, roaming), reproducing Table 1.
func TracingOverhead(p *platform.Platform, workloadNames []string, reps int, seed uint64) ([]OverheadRow, error) {
	return TracingOverheadExec(context.Background(), Executor{}, p, workloadNames, reps, seed)
}

// TracingOverheadExec is TracingOverhead under an explicit executor and
// context.
func TracingOverheadExec(ctx context.Context, e Executor, p *platform.Platform,
	workloadNames []string, reps int, seed uint64) ([]OverheadRow, error) {
	var rows []OverheadRow
	prog := e.cells(2 * len(workloadNames))
	for _, name := range workloadNames {
		w, err := p.WorkloadSpec(name)
		if err != nil {
			return nil, err
		}
		spec := Spec{
			Platform: p, Workload: w, Model: "omp", Strategy: mitigate.Rm,
			Seed: seedFor(seed, "overhead", name),
		}
		off, _, err := e.Series(ctx, spec, reps)
		if err != nil {
			return nil, err
		}
		prog.finish("overhead " + name + " tracing-off")
		spec.Tracing = true
		on, _, err := e.Series(ctx, spec, reps)
		if err != nil {
			return nil, err
		}
		prog.finish("overhead " + name + " tracing-on")
		offMean := stats.SummarizeTimes(off).Mean / 1000
		onMean := stats.SummarizeTimes(on).Mean / 1000
		rows = append(rows, OverheadRow{
			Workload:    name,
			OffSec:      offMean,
			OnSec:       onMean,
			IncreasePct: stats.RelChange(offMean, onMean),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Accuracy study (Table 7)
// ---------------------------------------------------------------------------

// AccuracyEntry is one Table-7 row: a worst-case trace replayed under its
// own workload configuration.
type AccuracyEntry struct {
	Benchmark string
	Platform  string
	Source    ConfigSource
	// AnomalySec is the worst-case trace's execution time.
	AnomalySec float64
	// InjectedSec is the mean execution time under injection.
	InjectedSec float64
	// AccuracyPct is |Injected/Anomaly - 1| * 100; SignedPct keeps the
	// sign (negative = replay ran faster than the anomaly).
	AccuracyPct float64
	SignedPct   float64
}

// AccuracyCase names one Table-7 configuration.
type AccuracyCase struct {
	Workload string
	Platform string
	Source   ConfigSource
}

// PaperAccuracyCases returns the ten worst-case trace configurations of
// Table 7 (six from the Intel platform, four from the AMD platform; SMT
// rows are necessarily AMD).
func PaperAccuracyCases() []AccuracyCase {
	intel, amd := machine.Intel9700KF, machine.AMD9950X3D
	omp, sycl := "omp", "sycl"
	return []AccuracyCase{
		{"nbody", intel, ConfigSource{omp, mitigate.Rm, 1}},
		{"nbody", intel, ConfigSource{omp, mitigate.TP, 1}},
		{"nbody", amd, ConfigSource{omp, mitigate.Rm.WithSMT(), 1}},
		{"babelstream", intel, ConfigSource{omp, mitigate.Rm, 1}},
		{"babelstream", intel, ConfigSource{omp, mitigate.TP, 1}},
		{"babelstream", amd, ConfigSource{sycl, mitigate.TP, 1}},
		{"minife", intel, ConfigSource{omp, mitigate.Rm, 1}},
		{"minife", intel, ConfigSource{omp, mitigate.TPHK2, 1}},
		{"minife", amd, ConfigSource{omp, mitigate.TPHK.WithSMT(), 1}},
		{"minife", amd, ConfigSource{sycl, mitigate.RmHK2, 1}},
	}
}

// AccuracyStudy measures replication accuracy for a set of cases.
type AccuracyStudy struct {
	Cases    []AccuracyCase
	Reps     RepCounts
	Seed     uint64
	Improved bool
	// Exec is the execution layer; the zero value runs with default
	// parallelism.
	Exec Executor
}

// Run builds each case's config and replays it under the same workload
// configuration it was captured from.
func (st AccuracyStudy) Run() ([]AccuracyEntry, error) {
	return st.RunContext(context.Background())
}

// RunContext executes the study under ctx.
func (st AccuracyStudy) RunContext(ctx context.Context) ([]AccuracyEntry, error) {
	st.Exec = st.Exec.withWorlds()
	var out []AccuracyEntry
	plats := map[string]*platform.Platform{}
	prog := st.Exec.cells(len(st.Cases))
	for _, c := range st.Cases {
		p, ok := plats[c.Platform]
		if !ok {
			var err error
			p, err = platform.New(c.Platform)
			if err != nil {
				return nil, err
			}
			plats[c.Platform] = p
		}
		entry, err := st.runCase(ctx, p, c)
		if err != nil {
			return nil, fmt.Errorf("accuracy %s/%s/%s: %w", c.Workload, c.Platform, c.Source.Label(), err)
		}
		out = append(out, *entry)
		prog.finish(fmt.Sprintf("accuracy %s %s %s", c.Workload, c.Platform, c.Source.Label()))
	}
	return out, nil
}

func (st AccuracyStudy) runCase(ctx context.Context, p *platform.Platform, c AccuracyCase) (*AccuracyEntry, error) {
	cfg, pr, err := BuildConfigExec(ctx, st.Exec, p, c.Workload, c.Source, st.Reps.Collect, st.Improved, st.Seed)
	if err != nil {
		return nil, err
	}
	w, err := p.WorkloadSpec(c.Workload)
	if err != nil {
		return nil, err
	}
	spec := Spec{
		Platform: p, Workload: w, Model: c.Source.Model, Strategy: c.Source.Strategy,
		Seed:   seedFor(st.Seed, "acc", c.Workload, c.Source.Label()),
		Inject: cfg,
	}
	times, _, err := st.Exec.Series(ctx, spec, st.Reps.Inject)
	if err != nil {
		return nil, err
	}
	injected := stats.SummarizeTimes(times).Mean / 1000
	anomaly := pr.Worst.ExecTime.Seconds()
	abs, signed := Accuracy(injected, anomaly)
	return &AccuracyEntry{
		Benchmark:   c.Workload,
		Platform:    p.Name,
		Source:      c.Source,
		AnomalySec:  anomaly,
		InjectedSec: injected,
		AccuracyPct: abs * 100,
		SignedPct:   signed * 100,
	}, nil
}

// MeanAccuracy returns the average absolute accuracy across entries (the
// paper reports 8.57%).
func MeanAccuracy(entries []AccuracyEntry) float64 {
	if len(entries) == 0 {
		return 0
	}
	var sum float64
	for _, e := range entries {
		sum += e.AccuracyPct
	}
	return sum / float64(len(entries))
}

// ---------------------------------------------------------------------------
// Table 6 aggregation
// ---------------------------------------------------------------------------

// AggregateChange averages the relative performance change per (model,
// strategy column) across all rows of the given tables — Table 6.
// SMT rows aggregate into their model like the paper does.
func AggregateChange(tables []*InjectionResult) map[string][]float64 {
	sums := map[string][]float64{"omp": make([]float64, 6), "sycl": make([]float64, 6)}
	counts := map[string][]int{"omp": make([]int, 6), "sycl": make([]int, 6)}
	for _, t := range tables {
		for _, sec := range t.Sections {
			for _, row := range sec.Rows {
				for i, cell := range row.Cells {
					sums[row.Model][i] += cell.ChangePct
					counts[row.Model][i]++
				}
			}
		}
	}
	out := make(map[string][]float64)
	for model, s := range sums {
		avg := make([]float64, len(s))
		for i := range s {
			if counts[model][i] > 0 {
				avg[i] = s[i] / float64(counts[model][i])
			}
		}
		out[model] = avg
	}
	return out
}
