package experiment

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/stats"
)

// ClusterSeries executes reps cluster runs of spec with index-derived seeds
// and returns the results in rep order. Like Series, reps fan out over the
// worker pool and output is bit-identical for every parallelism level: each
// rep is a pure function of (spec, seedAt(seed, i)). Under the batch policy
// (see Executor.Batch) reps share warm cluster shells — the multi-node
// topology and per-node schedulers built once per in-flight rep instead of
// once per rep — with outputs unchanged.
func (e Executor) ClusterSeries(ctx context.Context, spec cluster.Spec, seed uint64, reps int) ([]*cluster.Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// Shells are spec-specific, so the pool is per series: a mutex-guarded
	// stack holding at most one shell per in-flight rep.
	var (
		batch  = e.batchReps(reps)
		shMu   sync.Mutex
		shells []*cluster.Shell
	)
	getShell := func() (*cluster.Shell, error) {
		shMu.Lock()
		var sh *cluster.Shell
		if n := len(shells); n > 0 {
			sh = shells[n-1]
			shells[n-1] = nil
			shells = shells[:n-1]
		}
		shMu.Unlock()
		if sh != nil {
			return sh, nil
		}
		return cluster.NewShell(spec)
	}
	putShell := func(sh *cluster.Shell) {
		shMu.Lock()
		shells = append(shells, sh)
		shMu.Unlock()
	}
	results := make([]*cluster.Result, reps)
	var rec0 *obs.Recorder
	err := e.run(ctx, reps, func(i int) error {
		var rec *obs.Recorder
		if e.Obs != nil {
			rec = obs.NewRecorder(obs.Options{
				Timeline: e.Obs.Timeline && i == 0,
				Ring:     e.Obs.Ring,
				Reg:      e.Obs.Reg,
			})
		}
		var res *cluster.Result
		var err error
		if batch {
			var sh *cluster.Shell
			sh, err = getShell()
			if err == nil {
				res, err = sh.Run(seedAt(seed, i), rec)
				putShell(sh)
			}
		} else {
			res, err = cluster.Run(spec, seedAt(seed, i), rec)
		}
		if err != nil {
			e.dumpFlight(i, rec, err)
			return err
		}
		if i == 0 {
			rec0 = rec
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.deliverTimeline(rec0)
	return results, nil
}

// ClusterStudy compares placement policies on one cluster scenario: the
// headline straggler-sensitivity experiment. Every policy runs Reps times
// from the same base seed, so the only cross-policy difference is placement.
type ClusterStudy struct {
	// Spec is the scenario; its Policy field is overridden per cell.
	Spec cluster.Spec
	// Policies lists the placement policies to compare (nil = all).
	Policies []string
	// Reps is the repetition count per policy (0 = 5).
	Reps int
	// Seed is the base seed; rep i of every policy uses seedAt(Seed, i).
	Seed uint64
	// Exec is the execution layer.
	Exec Executor
}

// ClusterCell is one policy's aggregated outcome.
type ClusterCell struct {
	// Policy is the placement policy name.
	Policy string `json:"policy"`
	// Makespan summarizes per-job makespans in milliseconds, pooled across
	// reps (queueing included; this is what a tenant experiences).
	Makespan stats.Summary `json:"makespan"`
	// Batch summarizes per-rep batch completion times in milliseconds.
	Batch stats.Summary `json:"batch"`
	// StragglerShare is the mean fraction of jobs placed on the straggler.
	StragglerShare float64 `json:"straggler_share"`
	// StragglerRatio is the mean of per-rep straggler slowdown ratios
	// (straggler-placed mean makespan over the rest), over reps where both
	// sides are non-empty; 0 when no rep placed jobs on both sides.
	StragglerRatio float64 `json:"straggler_ratio"`
	// ThroughputJobsPerSec is the mean per-rep throughput.
	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	// Reps holds the per-rep raw results, in rep order.
	Reps []*cluster.Result `json:"reps,omitempty"`
}

// ClusterStudyResult is the study outcome: one cell per policy, in the order
// requested.
type ClusterStudyResult struct {
	Spec  cluster.Spec  `json:"spec"`
	Seed  uint64        `json:"seed"`
	Cells []ClusterCell `json:"cells"`
}

// Run executes the study. Cells run sequentially (each fans its reps over
// the executor pool), so cell progress is monotone.
func (s ClusterStudy) Run(ctx context.Context) (*ClusterStudyResult, error) {
	policies := s.Policies
	if len(policies) == 0 {
		policies = cluster.PolicyNames()
	}
	reps := s.Reps
	if reps == 0 {
		reps = 5
	}
	out := &ClusterStudyResult{Spec: s.Spec, Seed: s.Seed}
	tracker := s.Exec.cells(len(policies))
	for _, pol := range policies {
		spec := s.Spec
		spec.Policy = pol
		results, err := s.Exec.ClusterSeries(ctx, spec, s.Seed, reps)
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", pol, err)
		}
		out.Cells = append(out.Cells, summarizeCell(pol, results))
		tracker.finish(pol)
	}
	return out, nil
}

// summarizeCell aggregates one policy's reps.
func summarizeCell(policy string, results []*cluster.Result) ClusterCell {
	var makespans, batches []float64
	var shareSum, ratioSum, tputSum float64
	ratioN := 0
	for _, r := range results {
		for _, m := range r.MakespanNs {
			makespans = append(makespans, float64(m)/1e6)
		}
		batches = append(batches, float64(r.BatchNs)/1e6)
		shareSum += r.StragglerShare
		tputSum += r.ThroughputJobsPerSec
		if r.StragglerRatio > 0 {
			ratioSum += r.StragglerRatio
			ratioN++
		}
	}
	cell := ClusterCell{
		Policy:   policy,
		Makespan: stats.Summarize(makespans),
		Batch:    stats.Summarize(batches),
		Reps:     results,
	}
	if n := len(results); n > 0 {
		cell.StragglerShare = shareSum / float64(n)
		cell.ThroughputJobsPerSec = tputSum / float64(n)
	}
	if ratioN > 0 {
		cell.StragglerRatio = ratioSum / float64(ratioN)
	}
	return cell
}
