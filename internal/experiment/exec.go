package experiment

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/mitigate"
	"repro/internal/sim"
	"repro/internal/trace"
)

// seedStride separates consecutive rep seeds of a series. Reps are a pure
// function of (spec, seed), so any fixed stride works; this prime keeps the
// historical seed sequence intact across the parallel refactor.
const seedStride = 1000003

// seedAt derives the seed for rep i of a series starting at base.
func seedAt(base uint64, i int) uint64 { return base + uint64(i)*seedStride }

// ProgressFunc receives completion updates from a running study: done of
// total units are finished, and label names the unit that just completed.
// Callbacks are serialized; keep them fast.
type ProgressFunc func(done, total int, label string)

// Executor is the execution layer every study fans its repetitions through.
// Reps of a series are pure functions of (spec, seed), so the executor runs
// them on a bounded worker pool while guaranteeing results bit-identical to
// sequential execution: per-rep seeds are derived by index (seedAt), every
// rep gets its own simulation engine and scheduler, and results land in
// index-addressed slots so ordering never depends on goroutine completion.
//
// The zero value is ready to use and runs with Workers() parallelism.
type Executor struct {
	// Parallelism bounds the worker pool. 0 consults REPRO_PARALLEL and
	// falls back to runtime.GOMAXPROCS(0); negative values mean 1
	// (strictly sequential).
	Parallelism int
	// OnRep, when non-nil, is called after each rep of a series
	// completes, with the count of completed reps and the series total.
	// Calls are serialized but not index-ordered.
	OnRep func(done, total int)
	// OnCell, when non-nil, receives study-level progress: one call per
	// completed experiment cell (a series, pipeline, or case).
	OnCell ProgressFunc
}

// Workers resolves the effective worker-pool size.
func (e Executor) Workers() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	if e.Parallelism < 0 {
		return 1
	}
	if v := os.Getenv("REPRO_PARALLEL"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// run executes rep(i) for every i in [0, n) over the worker pool. The first
// error cancels the remaining (not yet started) reps; when several reps
// fail, the lowest rep index deterministically wins. A parent-context
// cancellation surfaces as ctx.Err() once in-flight reps have drained.
func (e Executor) run(ctx context.Context, n int, rep func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := e.Workers()
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		next     int
		done     int
		firstIdx = -1
		firstErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n || ctx.Err() != nil {
					return
				}
				err := rep(i)
				mu.Lock()
				if err != nil {
					if firstIdx < 0 || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					cancel()
					continue
				}
				done++
				if e.OnRep != nil {
					e.OnRep(done, n)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstIdx >= 0 {
		return fmt.Errorf("experiment: rep %d: %w", firstIdx, firstErr)
	}
	if err := context.Cause(ctx); err != nil && err != context.Canceled {
		return fmt.Errorf("experiment: series interrupted after %d of %d reps: %w", done, n, err)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("experiment: series interrupted after %d of %d reps: %w", done, n, err)
	}
	return nil
}

// Series executes reps runs of spec with index-derived seeds and returns
// the execution times in rep order (and the traces, when spec.Tracing).
// Output is bit-identical for every parallelism level.
func (e Executor) Series(ctx context.Context, spec Spec, reps int) ([]sim.Time, []*trace.Trace, error) {
	times := make([]sim.Time, reps)
	traces := make([]*trace.Trace, reps)
	err := e.run(ctx, reps, func(i int) error {
		s := spec
		s.Seed = seedAt(spec.Seed, i)
		res, err := RunOnce(s)
		if err != nil {
			return err
		}
		times[i] = res.ExecTime
		traces[i] = res.Trace
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return times[:reps:reps], compactTraces(traces), nil
}

// seriesWithPlan is Series with an explicit execution plan, bypassing
// strategy derivation (the thread-count sweeps). Traces are not collected.
func (e Executor) seriesWithPlan(ctx context.Context, spec Spec, plan *mitigate.Plan, reps int) ([]sim.Time, error) {
	times := make([]sim.Time, reps)
	err := e.run(ctx, reps, func(i int) error {
		s := spec
		s.Seed = seedAt(spec.Seed, i)
		res, err := runOnceWithPlan(s, plan)
		if err != nil {
			return err
		}
		times[i] = res.ExecTime
		return nil
	})
	if err != nil {
		return nil, err
	}
	return times, nil
}

// compactTraces drops nil entries (untraced runs) preserving rep order,
// returning nil when no run was traced.
func compactTraces(traces []*trace.Trace) []*trace.Trace {
	var out []*trace.Trace
	for _, tr := range traces {
		if tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// cellTracker counts completed study cells and forwards them to OnCell.
// Studies advance it from their (sequential) cell loops.
type cellTracker struct {
	done, total int
	cb          ProgressFunc
}

// cells builds a tracker for a study with the given cell count.
func (e Executor) cells(total int) *cellTracker {
	return &cellTracker{total: total, cb: e.OnCell}
}

// finish marks one more cell complete.
func (c *cellTracker) finish(label string) {
	c.done++
	if c.cb != nil {
		c.cb(c.done, c.total, label)
	}
}
