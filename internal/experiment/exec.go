package experiment

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/mitigate"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// seedStride separates consecutive rep seeds of a series. Reps are a pure
// function of (spec, seed), so any fixed stride works; this prime keeps the
// historical seed sequence intact across the parallel refactor.
const seedStride = 1000003

// seedAt derives the seed for rep i of a series starting at base.
func seedAt(base uint64, i int) uint64 { return base + uint64(i)*seedStride }

// SeedAt is the exported form of the per-rep seed derivation. Because every
// execution path (plain, batched, cluster) derives rep i's seed as
// base + i*stride, a series starting at SeedAt(base, off) runs exactly reps
// [off, off+n) of the series starting at base — the property the fleet's
// rep splitter uses to fan one job's repetitions across backends and merge
// the index-addressed slices byte-identically.
//
// Arithmetic is modulo 2^64 by design: a base near MaxUint64 wraps, and the
// wrapped value is the contract — every backend computes the same uint64,
// so a fleet split still reassembles byte-identically. Because the stride
// is odd (hence invertible mod 2^64), i ↦ SeedAt(base, i) is injective over
// any window of fewer than 2^64 reps: no two reps of a series ever collide
// on a seed, wrapped or not. FuzzSeedAt pins both properties.
func SeedAt(base uint64, i int) uint64 { return seedAt(base, i) }

// ProgressFunc receives completion updates from a running study: done of
// total units are finished, and label names the unit that just completed.
// Callbacks are serialized; keep them fast.
type ProgressFunc func(done, total int, label string)

// Executor is the execution layer every study fans its repetitions through.
// Reps of a series are pure functions of (spec, seed), so the executor runs
// them on a bounded worker pool while guaranteeing results bit-identical to
// sequential execution: per-rep seeds are derived by index (seedAt), every
// rep gets its own simulation engine and scheduler, and results land in
// index-addressed slots so ordering never depends on goroutine completion.
//
// The zero value is ready to use and runs with Workers() parallelism.
type Executor struct {
	// Parallelism bounds the worker pool. 0 consults REPRO_PARALLEL and
	// falls back to runtime.GOMAXPROCS(0); negative values mean 1
	// (strictly sequential).
	Parallelism int
	// OnRep, when non-nil, is called after each rep of a series
	// completes, with the count of completed reps and the series total.
	// Calls are serialized but not index-ordered.
	OnRep func(done, total int)
	// OnCell, when non-nil, receives study-level progress: one call per
	// completed experiment cell (a series, pipeline, or case).
	OnCell ProgressFunc
	// Obs, when non-nil, attaches observability to every rep the executor
	// runs (flight ring always; timeline for rep 0 when requested).
	Obs *ObsOptions
	// Batch selects the batched-rep execution path for Series,
	// seriesWithPlan, and ClusterSeries: engine + scheduler worlds built
	// once and forked back to their construction snapshots between reps.
	// Output is byte-identical to the unbatched path at every parallelism
	// level; the zero value (BatchAuto) batches at BatchThreshold+ reps,
	// BatchOff is the escape hatch.
	Batch BatchPolicy
	// Worlds, when non-nil, is the pool batched series draw their warm
	// worlds from, letting sweeps and repeated series share construction
	// across calls. Nil uses a transient pool per series (reps still share
	// worlds within the series).
	Worlds *WorldPool
}

// ObsOptions configures per-rep observability for an Executor.
type ObsOptions struct {
	// Timeline records the full event timeline of rep 0 of each series
	// (one representative run; recording every rep would multiply memory
	// for no analysis gain — reps differ only by seed).
	Timeline bool
	// Ring is the per-rep flight-ring size (0 = obs.DefaultRing).
	Ring int
	// Reg, when non-nil, receives every rep's kernel counters (counter
	// adds commute, so totals are deterministic under parallelism).
	Reg *obs.Registry
	// OnTimeline receives rep 0's recorder after a successful series when
	// Timeline is set. Called once per series, on the series' goroutine.
	OnTimeline func(*obs.Recorder)
	// FlightSink, when non-nil, receives a flight-recorder dump (JSON) for
	// every failed rep. Dumps are serialized.
	FlightSink io.Writer
	// OnFlight, when non-nil, receives the structured form of every failed
	// rep's flight dump (the daemon retains these for /debug/flightrecorder).
	// Calls are serialized with FlightSink writes.
	OnFlight func(obs.Flight)
}

// parallelEnv is the cached REPRO_PARALLEL resolution. The env var is read
// and validated once per process instead of on every Workers call; invalid
// values produce a single stderr warning instead of silently changing the
// parallelism. Tests reset the Once and swap warnOut.
var (
	parallelEnvOnce sync.Once
	parallelEnvVal  int
	warnOut         io.Writer = os.Stderr
)

// parseParallelEnv validates a REPRO_PARALLEL value. It returns the pool
// size (0 when unset or invalid) and a warning message for invalid values
// ("" when the value is empty or valid).
func parseParallelEnv(v string) (n int, warning string) {
	if v == "" {
		return 0, ""
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, fmt.Sprintf(
			"repro: ignoring invalid REPRO_PARALLEL=%q (want a positive integer); using GOMAXPROCS", v)
	}
	return n, ""
}

func parallelFromEnv() int {
	parallelEnvOnce.Do(func() {
		n, warning := parseParallelEnv(os.Getenv("REPRO_PARALLEL"))
		if warning != "" {
			fmt.Fprintln(warnOut, warning)
		}
		parallelEnvVal = n
	})
	return parallelEnvVal
}

// Workers resolves the effective worker-pool size.
func (e Executor) Workers() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	if e.Parallelism < 0 {
		return 1
	}
	if n := parallelFromEnv(); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// run executes rep(i) for every i in [0, n) over the worker pool. The first
// error cancels the remaining (not yet started) reps; when several reps
// fail, the lowest rep index deterministically wins. A parent-context
// cancellation surfaces as ctx.Err() once in-flight reps have drained.
func (e Executor) run(ctx context.Context, n int, rep func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := e.Workers()
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		next     int
		done     int
		reported int  // highest done value delivered to OnRep
		relaying bool // a worker is currently draining OnRep calls
		firstIdx = -1
		firstErr error
	)
	// notifyDone delivers OnRep(done, n) calls with the pool mutex
	// RELEASED: a slow or re-entrant callback must never stall the other
	// workers (or deadlock by re-acquiring the pool). One worker at a time
	// becomes the relay and drains every undelivered count in order, so
	// calls stay serialized and strictly monotonic (1..n, each exactly
	// once). Called with mu held; returns with mu held.
	notifyDone := func() {
		if e.OnRep == nil || relaying {
			return
		}
		relaying = true
		for reported < done {
			reported++
			d := reported
			mu.Unlock()
			e.OnRep(d, n)
			mu.Lock()
		}
		relaying = false
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n || ctx.Err() != nil {
					return
				}
				err := rep(i)
				mu.Lock()
				if err != nil {
					if firstIdx < 0 || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					cancel()
					continue
				}
				done++
				notifyDone()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstIdx >= 0 {
		return fmt.Errorf("experiment: rep %d: %w", firstIdx, firstErr)
	}
	if err := context.Cause(ctx); err != nil && err != context.Canceled {
		return fmt.Errorf("experiment: series interrupted after %d of %d reps: %w", done, n, err)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("experiment: series interrupted after %d of %d reps: %w", done, n, err)
	}
	return nil
}

// applyObs attaches the executor's per-rep observability options to a rep
// spec. The recorder is passive, so enabling it cannot change the series'
// times — only rep 0 keeps a full timeline (reps differ only by seed;
// recording every rep would multiply memory for no analysis gain).
func (e Executor) applyObs(s *Spec, i int) {
	if e.Obs == nil {
		return
	}
	s.Obs = &obs.Options{
		Timeline: e.Obs.Timeline && i == 0,
		Ring:     e.Obs.Ring,
		Reg:      e.Obs.Reg,
	}
}

// flightMu serializes flight-recorder dumps across all executors; failures
// are rare, so one process-wide lock is not a bottleneck.
var flightMu sync.Mutex

// dumpFlight delivers the failed rep's flight ring to the configured sinks.
func (e Executor) dumpFlight(i int, rec *obs.Recorder, err error) {
	if e.Obs == nil || rec == nil || (e.Obs.FlightSink == nil && e.Obs.OnFlight == nil) {
		return
	}
	f := rec.FlightDump(fmt.Sprintf("rep %d", i), err)
	flightMu.Lock()
	defer flightMu.Unlock()
	if e.Obs.FlightSink != nil {
		_ = obs.WriteFlight(e.Obs.FlightSink, f)
	}
	if e.Obs.OnFlight != nil {
		e.Obs.OnFlight(f)
	}
}

// deliverTimeline hands rep 0's recorder to the OnTimeline callback after a
// successful series.
func (e Executor) deliverTimeline(rec *obs.Recorder) {
	if e.Obs != nil && e.Obs.Timeline && e.Obs.OnTimeline != nil && rec != nil {
		e.Obs.OnTimeline(rec)
	}
}

// Series executes reps runs of spec with index-derived seeds and returns
// the execution times in rep order (and the traces, when spec.Tracing).
// Output is bit-identical for every parallelism level.
func (e Executor) Series(ctx context.Context, spec Spec, reps int) ([]sim.Time, []*trace.Trace, error) {
	if e.batchEligible(spec, reps) {
		plan, err := mitigate.Apply(spec.Strategy, spec.Platform.Topo)
		if err != nil {
			return nil, nil, err
		}
		return e.batchedSeries(ctx, spec, plan, reps, true)
	}
	times := make([]sim.Time, reps)
	traces := make([]*trace.Trace, reps)
	var rec0 *obs.Recorder
	err := e.run(ctx, reps, func(i int) error {
		s := spec
		s.Seed = seedAt(spec.Seed, i)
		e.applyObs(&s, i)
		res, err := RunOnce(s)
		if err != nil {
			e.dumpFlight(i, res.Obs, err)
			return err
		}
		if i == 0 {
			rec0 = res.Obs
		}
		times[i] = res.ExecTime
		traces[i] = res.Trace
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	e.deliverTimeline(rec0)
	return times[:reps:reps], compactTraces(traces), nil
}

// seriesWithPlan is Series with an explicit execution plan, bypassing
// strategy derivation (the thread-count sweeps). Traces are not collected.
func (e Executor) seriesWithPlan(ctx context.Context, spec Spec, plan *mitigate.Plan, reps int) ([]sim.Time, error) {
	if e.batchEligible(spec, reps) {
		times, _, err := e.batchedSeries(ctx, spec, plan, reps, false)
		return times, err
	}
	times := make([]sim.Time, reps)
	var rec0 *obs.Recorder
	err := e.run(ctx, reps, func(i int) error {
		s := spec
		s.Seed = seedAt(spec.Seed, i)
		e.applyObs(&s, i)
		res, err := runOnceWithPlan(s, plan)
		if err != nil {
			e.dumpFlight(i, res.Obs, err)
			return err
		}
		if i == 0 {
			rec0 = res.Obs
		}
		times[i] = res.ExecTime
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.deliverTimeline(rec0)
	return times, nil
}

// compactTraces drops nil entries (untraced runs) preserving rep order,
// returning nil when no run was traced.
func compactTraces(traces []*trace.Trace) []*trace.Trace {
	var out []*trace.Trace
	for _, tr := range traces {
		if tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// cellTracker counts completed study cells and forwards them to OnCell.
// Studies advance it from their (sequential) cell loops.
type cellTracker struct {
	done, total int
	cb          ProgressFunc
}

// cells builds a tracker for a study with the given cell count.
func (e Executor) cells(total int) *cellTracker {
	return &cellTracker{total: total, cb: e.OnCell}
}

// finish marks one more cell complete.
func (c *cellTracker) finish(label string) {
	c.done++
	if c.cb != nil {
		c.cb(c.done, c.total, label)
	}
}
