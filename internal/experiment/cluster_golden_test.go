package experiment

// The cluster golden test: pins the exact outputs of the simulated
// datacenter — per-rep batch completion times and a fingerprint of every
// job's makespan and placement — for each placement policy on the headline
// straggler scenario, at executor parallelism 1 and 8. This is the
// acceptance proof that lifting the single-node assumption kept the
// determinism contract: a cluster run is a pure function of (spec, seed).
//
// Regenerate with REPRO_UPDATE_GOLDEN=1 go test ./internal/experiment
// -run TestGoldenCluster — only for a deliberate, reviewed behaviour change.

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
)

const clusterGoldenPath = "testdata/golden_cluster.json"

const clusterGoldenReps = 3

// clusterGoldenSpec is the pinned scenario: the headline straggler study at
// a reduced rep count.
func clusterGoldenSpec(policy string) cluster.Spec {
	s := cluster.StragglerStudySpec()
	s.Policy = policy
	return s
}

// clusterGoldenRecord is the pinned outcome of one policy.
type clusterGoldenRecord struct {
	BatchNs []int64 `json:"batch_ns"`
	Hash    string  `json:"hash"`
	Jobs    int     `json:"jobs"`
}

// fingerprintClusterResults hashes every job's makespan and placement of
// every rep, in order, so any change to placement or timing is caught.
func fingerprintClusterResults(results []*cluster.Result) string {
	h := fnv.New64a()
	for _, r := range results {
		fmt.Fprintf(h, "%s/%d/%d\n", r.Policy, r.Jobs, r.BatchNs)
		for i := range r.MakespanNs {
			fmt.Fprintf(h, "%d %d\n", r.MakespanNs[i], r.Placements[i])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// runClusterGolden executes one policy's series at the given parallelism.
// With withObs the passive recorder (timeline, lanes) is attached; the
// fixture must still match exactly.
func runClusterGolden(t *testing.T, policy string, parallelism int, withObs bool) clusterGoldenRecord {
	t.Helper()
	exec := Executor{Parallelism: parallelism}
	if withObs {
		exec.Obs = &ObsOptions{Timeline: true, Reg: obs.NewRegistry()}
	}
	results, err := exec.ClusterSeries(context.Background(), clusterGoldenSpec(policy), 42, clusterGoldenReps)
	if err != nil {
		t.Fatal(err)
	}
	rec := clusterGoldenRecord{Hash: fingerprintClusterResults(results)}
	for _, r := range results {
		rec.BatchNs = append(rec.BatchNs, r.BatchNs)
		rec.Jobs += r.Jobs
	}
	return rec
}

// TestGoldenCluster verifies cluster runs reproduce the pinned outputs
// exactly, at executor parallelism 1 and 8 and with observability attached.
func TestGoldenCluster(t *testing.T) {
	update := os.Getenv("REPRO_UPDATE_GOLDEN") != ""
	var golden map[string]clusterGoldenRecord
	if !update {
		raw, err := os.ReadFile(clusterGoldenPath)
		if err != nil {
			t.Fatalf("reading cluster golden fixture (set REPRO_UPDATE_GOLDEN=1 to create): %v", err)
		}
		if err := json.Unmarshal(raw, &golden); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]clusterGoldenRecord{}
	for _, policy := range cluster.PolicyNames() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			seq := runClusterGolden(t, policy, 1, false)
			par := runClusterGolden(t, policy, 8, false)
			if fmt.Sprint(seq) != fmt.Sprint(par) {
				t.Fatalf("parallelism changed outputs:\n  p=1: %+v\n  p=8: %+v", seq, par)
			}
			// Observability is a passive observer: attaching the recorder
			// (with per-node lanes) must not move a single event.
			withObs := runClusterGolden(t, policy, 8, true)
			if fmt.Sprint(seq) != fmt.Sprint(withObs) {
				t.Fatalf("obs-enabled run diverged:\n  plain: %+v\n  obs:   %+v", seq, withObs)
			}
			got[policy] = seq
			if update {
				return
			}
			want, ok := golden[policy]
			if !ok {
				t.Fatalf("policy %q missing from golden fixture; regenerate with REPRO_UPDATE_GOLDEN=1", policy)
			}
			if fmt.Sprint(want) != fmt.Sprint(seq) {
				t.Errorf("cluster output diverged from golden fixture:\n  want %+v\n  got  %+v", want, seq)
			}
		})
	}
	if update {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(clusterGoldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d policies)", clusterGoldenPath, len(got))
	}
}
