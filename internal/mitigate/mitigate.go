// Package mitigate implements the paper's mitigation strategies (§5
// configuration labels): roaming vs thread pinning, housekeeping-core
// reservation at 12.5% (HK) and 25% (HK2), their combinations, and SMT
// toggling. A Strategy turns a machine topology into an execution Plan:
// which CPUs the workload may use, how many threads to run, and each
// thread's affinity.
package mitigate

import (
	"fmt"
	"math"

	"repro/internal/machine"
)

// Strategy describes one mitigation configuration.
type Strategy struct {
	// Pin fixes each workload thread to one CPU (TP); otherwise threads
	// roam over the allowed set (Rm).
	Pin bool
	// HKFrac is the fraction of cores left to background system tasks:
	// 0 (none), 0.125 (HK) or 0.25 (HK2).
	HKFrac float64
	// SMT runs the workload on both hardware threads of each core. When
	// false (the default rows of the paper's tables) only the primary
	// thread of each core is used.
	SMT bool
}

// The six strategy columns of the paper's tables, without SMT.
var (
	Rm    = Strategy{}
	RmHK  = Strategy{HKFrac: 0.125}
	RmHK2 = Strategy{HKFrac: 0.25}
	TP    = Strategy{Pin: true}
	TPHK  = Strategy{Pin: true, HKFrac: 0.125}
	TPHK2 = Strategy{Pin: true, HKFrac: 0.25}
)

// Columns returns the strategies in the paper's column order.
func Columns() []Strategy { return []Strategy{Rm, RmHK, RmHK2, TP, TPHK, TPHK2} }

// WithSMT returns a copy of s with SMT enabled.
func (s Strategy) WithSMT() Strategy {
	s.SMT = true
	return s
}

// Name renders the paper's label: Rm, RmHK, RmHK2, TP, TPHK, TPHK2, with a
// "-SMT" suffix when SMT is on.
func (s Strategy) Name() string {
	name := "Rm"
	if s.Pin {
		name = "TP"
	}
	switch {
	case s.HKFrac == 0:
	case math.Abs(s.HKFrac-0.125) < 1e-9:
		name += "HK"
	case math.Abs(s.HKFrac-0.25) < 1e-9:
		name += "HK2"
	default:
		name += fmt.Sprintf("HK(%.3f)", s.HKFrac)
	}
	if s.SMT {
		name += "-SMT"
	}
	return name
}

// Parse converts a label produced by Name back into a Strategy.
func Parse(name string) (Strategy, error) {
	s := Strategy{}
	rest := name
	if n, ok := cutSuffix(rest, "-SMT"); ok {
		s.SMT = true
		rest = n
	}
	switch rest {
	case "Rm":
	case "RmHK":
		s.HKFrac = 0.125
	case "RmHK2":
		s.HKFrac = 0.25
	case "TP":
		s.Pin = true
	case "TPHK":
		s.Pin = true
		s.HKFrac = 0.125
	case "TPHK2":
		s.Pin = true
		s.HKFrac = 0.25
	default:
		return Strategy{}, fmt.Errorf("mitigate: unknown strategy %q", name)
	}
	return s, nil
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}

// Plan is the concrete execution configuration derived from a strategy on a
// machine.
type Plan struct {
	// Strategy echoes the input.
	Strategy Strategy
	// Threads is the number of workload threads (one per allowed CPU, as
	// in the paper's experiments, which explicitly utilize all available
	// cores).
	Threads int
	// Allowed is the CPU set workload threads may run on.
	Allowed machine.CPUSet
	// Housekeeping is the CPU set left free for background tasks (still
	// usable by the OS and noise; just not by the workload).
	Housekeeping machine.CPUSet
	// PinCPUOf maps thread index to its pinned CPU; nil when roaming.
	PinCPUOf []int
}

// AffinityOf returns the affinity mask for thread i.
func (p *Plan) AffinityOf(i int) machine.CPUSet {
	if p.PinCPUOf == nil {
		return p.Allowed
	}
	return machine.SetOf(p.PinCPUOf[i%len(p.PinCPUOf)])
}

// Apply derives the execution plan for strategy s on topology topo.
// Housekeeping removes whole physical cores (both hardware threads) from
// the workload's set, choosing the highest-numbered user cores, matching
// how the paper restricts the workload "to the remaining cores".
func Apply(s Strategy, topo *machine.Topology) (*Plan, error) {
	if s.HKFrac < 0 || s.HKFrac >= 1 {
		return nil, fmt.Errorf("mitigate: housekeeping fraction %v out of [0,1)", s.HKFrac)
	}
	if s.SMT && topo.ThreadsPerCore < 2 {
		return nil, fmt.Errorf("mitigate: platform %s has no SMT to enable", topo.Name)
	}
	user := topo.UserMask()
	// Collect user physical cores (cores whose primary thread is visible).
	var cores []int
	for c := 0; c < topo.Cores; c++ {
		if user.Has(c) {
			cores = append(cores, c)
		}
	}
	nHK := 0
	if s.HKFrac > 0 {
		nHK = int(math.Ceil(s.HKFrac * float64(len(cores))))
		if nHK >= len(cores) {
			return nil, fmt.Errorf("mitigate: housekeeping would consume all %d cores", len(cores))
		}
	}
	hkCores := cores[len(cores)-nHK:]
	workCores := cores[:len(cores)-nHK]

	var allowed, hk machine.CPUSet
	addCore := func(set machine.CPUSet, core int, smt bool) machine.CPUSet {
		set = set.Set(core)
		if smt && topo.ThreadsPerCore == 2 {
			set = set.Set(core + topo.Cores)
		}
		return set
	}
	for _, c := range workCores {
		allowed = addCore(allowed, c, s.SMT)
	}
	for _, c := range hkCores {
		// Housekeeping cores are fully off-limits to the workload,
		// including their SMT siblings.
		hk = addCore(hk, c, true)
	}

	p := &Plan{
		Strategy:     s,
		Threads:      allowed.Count(),
		Allowed:      allowed,
		Housekeeping: hk,
	}
	if s.Pin {
		p.PinCPUOf = allowed.List()
	}
	return p, nil
}

// MustApply is Apply that panics on error, for known-good combinations.
func MustApply(s Strategy, topo *machine.Topology) *Plan {
	p, err := Apply(s, topo)
	if err != nil {
		panic(err)
	}
	return p
}
