package mitigate

import (
	"testing"

	"repro/internal/machine"
)

func TestNames(t *testing.T) {
	cases := map[string]Strategy{
		"Rm":        Rm,
		"RmHK":      RmHK,
		"RmHK2":     RmHK2,
		"TP":        TP,
		"TPHK":      TPHK,
		"TPHK2":     TPHK2,
		"Rm-SMT":    Rm.WithSMT(),
		"TPHK2-SMT": TPHK2.WithSMT(),
	}
	for want, s := range cases {
		if got := s.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
		parsed, err := Parse(want)
		if err != nil {
			t.Errorf("Parse(%q): %v", want, err)
			continue
		}
		if parsed != s {
			t.Errorf("Parse(%q) = %+v, want %+v", want, parsed, s)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("Parse should reject unknown labels")
	}
}

func TestColumnsOrder(t *testing.T) {
	want := []string{"Rm", "RmHK", "RmHK2", "TP", "TPHK", "TPHK2"}
	cols := Columns()
	for i, s := range cols {
		if s.Name() != want[i] {
			t.Fatalf("column %d = %s, want %s", i, s.Name(), want[i])
		}
	}
}

func TestApplyIntelHK(t *testing.T) {
	topo := machine.MustPreset(machine.Intel9700KF) // 8 cores, no SMT
	p := MustApply(RmHK, topo)
	// 12.5% of 8 = 1 housekeeping core.
	if p.Threads != 7 || p.Allowed.Count() != 7 {
		t.Fatalf("HK on Intel: threads=%d allowed=%v", p.Threads, p.Allowed)
	}
	if !p.Housekeeping.Equal(machine.SetOf(7)) {
		t.Fatalf("housekeeping = %v, want {7}", p.Housekeeping)
	}
	p2 := MustApply(RmHK2, topo)
	if p2.Threads != 6 || !p2.Housekeeping.Equal(machine.SetOf(6, 7)) {
		t.Fatalf("HK2 on Intel: %+v", p2)
	}
}

func TestApplyAMDNoSMT(t *testing.T) {
	topo := machine.MustPreset(machine.AMD9950X3D) // 16 cores x 2 threads
	p := MustApply(Rm, topo)
	// Default rows: one thread per physical core, primary threads only.
	if p.Threads != 16 {
		t.Fatalf("Rm threads on AMD = %d, want 16", p.Threads)
	}
	for _, cpu := range p.Allowed.List() {
		if !topo.IsPrimaryThread(cpu) {
			t.Fatalf("non-SMT plan uses secondary thread %d", cpu)
		}
	}
}

func TestApplyAMDSMT(t *testing.T) {
	topo := machine.MustPreset(machine.AMD9950X3D)
	p := MustApply(Rm.WithSMT(), topo)
	if p.Threads != 32 {
		t.Fatalf("SMT threads = %d, want 32", p.Threads)
	}
	pHK := MustApply(RmHK.WithSMT(), topo)
	// 12.5% of 16 cores = 2 cores -> 28 logical CPUs left.
	if pHK.Threads != 28 {
		t.Fatalf("SMT+HK threads = %d, want 28", pHK.Threads)
	}
	// Housekeeping removes whole cores incl. siblings: cores 14,15 -> CPUs
	// 14,15,30,31.
	if !pHK.Housekeeping.Equal(machine.SetOf(14, 15, 30, 31)) {
		t.Fatalf("housekeeping = %v", pHK.Housekeeping)
	}
}

func TestApplySMTOnNonSMTPlatformFails(t *testing.T) {
	topo := machine.MustPreset(machine.Intel9700KF)
	if _, err := Apply(Rm.WithSMT(), topo); err == nil {
		t.Fatal("SMT on non-SMT platform should error")
	}
}

func TestApplyPinning(t *testing.T) {
	topo := machine.MustPreset(machine.Intel9700KF)
	p := MustApply(TP, topo)
	if p.PinCPUOf == nil || len(p.PinCPUOf) != 8 {
		t.Fatalf("TP pinning: %+v", p.PinCPUOf)
	}
	for i := 0; i < p.Threads; i++ {
		aff := p.AffinityOf(i)
		if aff.Count() != 1 || !aff.Has(p.PinCPUOf[i]) {
			t.Fatalf("thread %d affinity %v", i, aff)
		}
	}
	roam := MustApply(Rm, topo)
	for i := 0; i < roam.Threads; i++ {
		if !roam.AffinityOf(i).Equal(roam.Allowed) {
			t.Fatal("roaming thread affinity should be the full allowed set")
		}
	}
}

func TestApplyHousekeepingDisjoint(t *testing.T) {
	for _, name := range []string{machine.Intel9700KF, machine.AMD9950X3D} {
		topo := machine.MustPreset(name)
		for _, s := range Columns() {
			p := MustApply(s, topo)
			if !p.Allowed.And(p.Housekeeping).Empty() {
				t.Fatalf("%s on %s: allowed and housekeeping overlap", s.Name(), name)
			}
			if p.Threads != p.Allowed.Count() {
				t.Fatalf("%s: thread count mismatch", s.Name())
			}
		}
	}
}

func TestApplyReservedCoresExcluded(t *testing.T) {
	topo := machine.MustPreset(machine.A64FXRsv)
	p := MustApply(Rm, topo)
	if p.Threads != 48 {
		t.Fatalf("A64FX reserved: threads = %d, want 48", p.Threads)
	}
	if p.Allowed.Has(48) || p.Allowed.Has(49) {
		t.Fatal("firmware-reserved cores leaked into workload set")
	}
}

func TestApplyRejectsBadFractions(t *testing.T) {
	topo := machine.MustPreset(machine.TinyTest)
	if _, err := Apply(Strategy{HKFrac: -0.1}, topo); err == nil {
		t.Fatal("negative fraction should error")
	}
	if _, err := Apply(Strategy{HKFrac: 0.99}, topo); err == nil {
		t.Fatal("all-cores housekeeping should error")
	}
}
