package workloads

import (
	"math"
	"sync"

	"repro/internal/parmodel"
)

// ---------------------------------------------------------------------------
// Real N-body kernel: all-pairs gravitational interactions with leapfrog
// (kick-drift-kick) integration, goroutine-parallel over body ranges. This
// is the classic HeCBench/SHOC-style N-body benchmark structure.
// ---------------------------------------------------------------------------

// NBody is an all-pairs gravitational N-body system.
type NBody struct {
	N          int
	Pos        [][3]float64
	Vel        [][3]float64
	Mass       []float64
	Softening2 float64 // softening epsilon squared
	G          float64
}

// NewNBody creates a deterministic N-body system: bodies on a jittered
// lattice with small random velocities, derived from seed.
func NewNBody(n int, seed uint64) *NBody {
	b := &NBody{
		N:          n,
		Pos:        make([][3]float64, n),
		Vel:        make([][3]float64, n),
		Mass:       make([]float64, n),
		Softening2: 1e-4,
		G:          1.0,
	}
	s := seed
	next := func() float64 {
		// splitmix64 to [0,1)
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / (1 << 53)
	}
	side := int(math.Cbrt(float64(n))) + 1
	for i := 0; i < n; i++ {
		x := float64(i%side) + 0.3*next()
		y := float64((i/side)%side) + 0.3*next()
		z := float64(i/(side*side)) + 0.3*next()
		b.Pos[i] = [3]float64{x, y, z}
		b.Vel[i] = [3]float64{0.01 * (next() - 0.5), 0.01 * (next() - 0.5), 0.01 * (next() - 0.5)}
		b.Mass[i] = 1.0 / float64(n)
	}
	return b
}

// Accel computes accelerations for bodies [lo, hi) into acc.
func (b *NBody) Accel(acc [][3]float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var ax, ay, az float64
		pi := b.Pos[i]
		for j := 0; j < b.N; j++ {
			dx := b.Pos[j][0] - pi[0]
			dy := b.Pos[j][1] - pi[1]
			dz := b.Pos[j][2] - pi[2]
			r2 := dx*dx + dy*dy + dz*dz + b.Softening2
			inv := 1 / (r2 * math.Sqrt(r2))
			f := b.G * b.Mass[j] * inv
			ax += f * dx
			ay += f * dy
			az += f * dz
		}
		acc[i] = [3]float64{ax, ay, az}
	}
}

// Step advances the system by dt using leapfrog, computing forces with
// `threads` goroutines.
func (b *NBody) Step(dt float64, threads int, acc [][3]float64) {
	if threads < 1 {
		threads = 1
	}
	parallelRanges(b.N, threads, func(lo, hi int) { b.Accel(acc, lo, hi) })
	for i := 0; i < b.N; i++ {
		b.Vel[i][0] += acc[i][0] * dt
		b.Vel[i][1] += acc[i][1] * dt
		b.Vel[i][2] += acc[i][2] * dt
		b.Pos[i][0] += b.Vel[i][0] * dt
		b.Pos[i][1] += b.Vel[i][1] * dt
		b.Pos[i][2] += b.Vel[i][2] * dt
	}
}

// Run advances steps timesteps and returns the final total energy.
func (b *NBody) Run(steps int, dt float64, threads int) float64 {
	acc := make([][3]float64, b.N)
	for s := 0; s < steps; s++ {
		b.Step(dt, threads, acc)
	}
	return b.Energy()
}

// Energy returns kinetic plus potential energy (serial; O(N^2)).
func (b *NBody) Energy() float64 {
	var ke, pe float64
	for i := 0; i < b.N; i++ {
		v := b.Vel[i]
		ke += 0.5 * b.Mass[i] * (v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
		for j := i + 1; j < b.N; j++ {
			dx := b.Pos[j][0] - b.Pos[i][0]
			dy := b.Pos[j][1] - b.Pos[i][1]
			dz := b.Pos[j][2] - b.Pos[i][2]
			r := math.Sqrt(dx*dx + dy*dy + dz*dz + b.Softening2)
			pe -= b.G * b.Mass[i] * b.Mass[j] / r
		}
	}
	return ke + pe
}

// parallelRanges splits [0, n) into `threads` contiguous ranges and runs fn
// on each concurrently.
func parallelRanges(n, threads int, fn func(lo, hi int)) {
	if threads <= 1 || n < threads {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		lo := t * n / threads
		hi := (t + 1) * n / threads
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}

// ---------------------------------------------------------------------------
// Simulation cost model
// ---------------------------------------------------------------------------

// NBodySpec is the N-body cost model: Steps parallel regions, each
// computing Bodies^2 pair interactions split into Units work units.
// Compute-bound: the working set fits in cache, so memory traffic is
// negligible.
type NBodySpec struct {
	// Bodies is N; interactions per step are N^2.
	Bodies int
	// Steps is the number of timesteps (one parallel region each).
	Steps int
	// Units is the number of work units per region (blocks of bodies).
	Units int
	// CyclesPerPair is the cost of one pair interaction in CPU cycles
	// (rsqrt + FMA chain, amortized over SIMD lanes).
	CyclesPerPair float64
	// SYCLFactor is the DPC++-vs-OpenMP efficiency gap for this kernel.
	SYCLFactor float64
}

// DefaultNBodySpec sizes the workload so the Intel platform's baseline
// lands near the paper's ~0.45 s. Units 0 = adaptive (8 per thread).
func DefaultNBodySpec() NBodySpec {
	return NBodySpec{
		Bodies:        32768,
		Steps:         16,
		CyclesPerPair: 1.0,
		SYCLFactor:    1.30,
	}
}

// Name implements Workload.
func (s NBodySpec) Name() string { return "nbody" }

// TotalCycles returns the model's total compute demand.
func (s NBodySpec) TotalCycles() float64 {
	return float64(s.Bodies) * float64(s.Bodies) * float64(s.Steps) * s.CyclesPerPair
}

// Body implements Workload.
func (s NBodySpec) Body() parmodel.Body {
	return func(m parmodel.Model) {
		f := syclScale(m, s.SYCLFactor)
		units := unitsFor(m, s.Units)
		pairsPerUnit := float64(s.Bodies) * float64(s.Bodies) / float64(units)
		unit := parmodel.Cost{Cycles: pairsPerUnit * s.CyclesPerPair * f}
		for step := 0; step < s.Steps; step++ {
			m.ParallelFor(units, func(int) parmodel.Cost { return unit })
			// Leapfrog integration: small serial update per step.
			m.MasterCompute(float64(s.Bodies) * 12 * f)
		}
	}
}
