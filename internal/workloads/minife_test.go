package workloads

import (
	"math"
	"testing"
)

func TestMiniFEAssemblyStructure(t *testing.T) {
	m := NewMiniFE(4, 2)
	n := 4 * 4 * 4
	if m.A.N != n {
		t.Fatalf("rows = %d, want %d", m.A.N, n)
	}
	// A corner node has 2*2*2 = 8 neighbors (incl. itself); an interior
	// node has 27.
	corner := m.A.RowPtr[1] - m.A.RowPtr[0]
	if corner != 8 {
		t.Fatalf("corner row nnz = %d, want 8", corner)
	}
	interior := 1 + 1*4 + 1*16 // node (1,1,1)
	got := m.A.RowPtr[interior+1] - m.A.RowPtr[interior]
	if got != 27 {
		t.Fatalf("interior row nnz = %d, want 27", got)
	}
}

func TestMiniFEMatrixSymmetricDiagonallyDominant(t *testing.T) {
	m := NewMiniFE(3, 1)
	a := m.A
	// Build a dense map for symmetry checking (tiny problem).
	dense := make(map[[2]int]float64)
	for r := 0; r < a.N; r++ {
		var offSum, diag float64
		for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
			c := a.ColIdx[p]
			dense[[2]int{r, c}] = a.Values[p]
			if c == r {
				diag = a.Values[p]
			} else {
				offSum += math.Abs(a.Values[p])
			}
		}
		if diag <= offSum-1e-12 {
			t.Fatalf("row %d not diagonally dominant: diag=%v off=%v", r, diag, offSum)
		}
	}
	for key, v := range dense {
		if dense[[2]int{key[1], key[0]}] != v {
			t.Fatalf("matrix not symmetric at %v", key)
		}
	}
}

func TestMiniFECGConverges(t *testing.T) {
	m := NewMiniFE(8, 4)
	res := m.SolveCG(200, 1e-10, 4)
	if res.Residual > 1e-9 {
		t.Fatalf("CG did not converge: %+v", res)
	}
	if err := m.SolutionError(); err > 1e-8 {
		t.Fatalf("solution error %g vs exact ones", err)
	}
}

func TestMiniFECGParallelMatchesSerial(t *testing.T) {
	a := NewMiniFE(6, 1)
	b := NewMiniFE(6, 4)
	ra := a.SolveCG(50, 1e-12, 1)
	rb := b.SolveCG(50, 1e-12, 4)
	if ra.Iters != rb.Iters {
		t.Fatalf("iteration counts differ: %d vs %d", ra.Iters, rb.Iters)
	}
	for i := range a.X {
		if math.Abs(a.X[i]-b.X[i]) > 1e-9 {
			t.Fatalf("solutions diverge at %d", i)
		}
	}
}

func TestSpMVKnownResult(t *testing.T) {
	// 2x2x2 grid: every node couples to all 8 nodes. Diagonal 26, seven
	// -1 neighbors: A*ones = 26 - 7 = 19 in every row.
	m := NewMiniFE(2, 1)
	for _, v := range m.B {
		if v != 19 {
			t.Fatalf("b = %v, want all 19", m.B)
		}
	}
}

func TestMiniFESpecString(t *testing.T) {
	s := MiniFESpec{Dim: 10, CGIters: 5}
	if s.String() == "" || s.Name() != "minife" {
		t.Fatal("labels")
	}
}

func BenchmarkMiniFESpMVReal(b *testing.B) {
	m := NewMiniFE(24, 4)
	x := make([]float64, m.A.N)
	y := make([]float64, m.A.N)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.A.SpMV(x, y, 4)
	}
}
