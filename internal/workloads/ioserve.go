package workloads

import (
	"repro/internal/cpusched"
	"repro/internal/parmodel"
	"repro/internal/sim"
)

// ---------------------------------------------------------------------------
// I/O-bound workloads. Unlike the CPU-bound benchmarks, these spend much of
// their critical path blocked on simulated devices, so their noise
// sensitivity is dominated by the interrupt path: a device completion IRQ
// delayed behind injected IRQ/softirq noise delays the wakeup of the
// blocked thread directly, where a CPU-bound kernel merely loses the noise
// handler's occupancy. The analyze command should therefore rank irq/softirq
// sensitivity differently for these than for nbody/babelstream/minife.
// ---------------------------------------------------------------------------

// Device names the I/O workloads block on. The experiment layer registers
// each spec's Devices() on the scheduler before the workload runs.
const (
	svcLoopDevice   = "nic0"
	logWriterDevice = "disk0"
)

// SvcLoopSpec is a request/response service loop: Outer rounds of a
// parallel loop over Requests work units, each unit parsing and handling
// one request (compute + memory) and then blocking on the NIC to send its
// response. Units aggregated into one runtime chunk coalesce their
// responses into a single combined NIC request (parmodel.Cost.Add's
// request-coalescing rule — a vectored send), so under a static schedule
// each thread blocks once per round on its range's combined volume, and
// finer chunking trades larger event counts for more frequent block/wake
// cycles. Either way every round ends with all threads blocked on the
// serial NIC: completion-IRQ latency, not raw compute, paces the loop.
type SvcLoopSpec struct {
	// Outer is the number of service rounds (parallel regions).
	Outer int
	// Requests is the number of requests per round (work units).
	Requests int
	// CyclesPerReq is the request-handling compute cost.
	CyclesPerReq float64
	// BytesPerReq is the request-handling memory traffic.
	BytesPerReq float64
	// IOBytesPerReq is the response volume written to the NIC per request.
	IOBytesPerReq float64
	// Imbalance ramps response size: request i moves
	// IOBytesPerReq * (1 + Imbalance*i/Requests) bytes.
	Imbalance float64
	// NICLatency and NICBytesPerNs parameterize the simulated NIC.
	NICLatency    sim.Time
	NICBytesPerNs float64
	// SYCLFactor is the per-workload runtime efficiency gap (compute only;
	// I/O volume is data and does not scale).
	SYCLFactor float64
}

// DefaultSvcLoopSpec returns a configuration whose rounds are NIC-bound:
// the per-request service time (latency + transfer) exceeds the per-request
// compute, so the device queue paces the loop.
func DefaultSvcLoopSpec() SvcLoopSpec {
	return SvcLoopSpec{
		Outer:         30,
		Requests:      256,
		CyclesPerReq:  50e3,
		BytesPerReq:   16 << 10,
		IOBytesPerReq: 16 << 10,
		Imbalance:     0.5,
		NICLatency:    20 * sim.Microsecond,
		NICBytesPerNs: 10, // 10 GB/s
		SYCLFactor:    1.0,
	}
}

// Name implements Workload.
func (s SvcLoopSpec) Name() string { return "svcloop" }

// Devices implements IOWorkload.
func (s SvcLoopSpec) Devices() []cpusched.DeviceSpec {
	return []cpusched.DeviceSpec{{
		Name:       svcLoopDevice,
		Latency:    s.NICLatency,
		BytesPerNs: s.NICBytesPerNs,
	}}
}

// Body implements Workload.
func (s SvcLoopSpec) Body() parmodel.Body {
	return func(m parmodel.Model) {
		f := syclScale(m, s.SYCLFactor)
		for o := 0; o < s.Outer; o++ {
			m.ParallelFor(s.Requests, func(i int) parmodel.Cost {
				io := s.IOBytesPerReq * (1 + s.Imbalance*float64(i)/float64(s.Requests))
				return parmodel.Cost{
					Cycles:  s.CyclesPerReq * f,
					Bytes:   s.BytesPerReq,
					IOBytes: io,
					IODev:   svcLoopDevice,
				}
			})
		}
	}
}

// LogWriterSpec is a log writer with fsync phases: each batch formats
// Records log records in parallel (compute + memory), then the master
// thread writes the batch to disk and issues an fsync — modeled as a
// blocking write of the batch volume followed by a zero-byte flush barrier
// that costs the device's full latency again. The fsync sits on the
// critical path of every batch, serially, on one thread: a single delayed
// completion IRQ stalls the whole pipeline.
type LogWriterSpec struct {
	// Outer is the number of batches.
	Outer int
	// Records is the number of log records per batch (work units).
	Records int
	// CyclesPerRec is the record-formatting compute cost.
	CyclesPerRec float64
	// BytesPerRec is the record size; the batch write moves
	// Records * BytesPerRec bytes.
	BytesPerRec float64
	// DiskLatency and DiskBytesPerNs parameterize the simulated disk.
	DiskLatency    sim.Time
	DiskBytesPerNs float64
	// SYCLFactor is the per-workload runtime efficiency gap (compute only).
	SYCLFactor float64
}

// DefaultLogWriterSpec returns a configuration where the write+fsync pair
// is comparable to the batch's parallel formatting time, so device latency
// variance shows directly in run time.
func DefaultLogWriterSpec() LogWriterSpec {
	return LogWriterSpec{
		Outer:          40,
		Records:        512,
		CyclesPerRec:   120e3,
		BytesPerRec:    4 << 10,
		DiskLatency:    100 * sim.Microsecond,
		DiskBytesPerNs: 2, // 2 GB/s
		SYCLFactor:     1.0,
	}
}

// Name implements Workload.
func (s LogWriterSpec) Name() string { return "logwriter" }

// Devices implements IOWorkload.
func (s LogWriterSpec) Devices() []cpusched.DeviceSpec {
	return []cpusched.DeviceSpec{{
		Name:       logWriterDevice,
		Latency:    s.DiskLatency,
		BytesPerNs: s.DiskBytesPerNs,
	}}
}

// Body implements Workload.
func (s LogWriterSpec) Body() parmodel.Body {
	return func(m parmodel.Model) {
		f := syclScale(m, s.SYCLFactor)
		batch := float64(s.Records) * s.BytesPerRec
		for o := 0; o < s.Outer; o++ {
			m.ParallelFor(s.Records, func(i int) parmodel.Cost {
				return parmodel.Cost{
					Cycles: s.CyclesPerRec * f,
					Bytes:  s.BytesPerRec,
				}
			})
			// write() of the batch, then fsync() — a latency-only barrier
			// that completes when the device reports the data durable.
			m.MasterBlockOn(logWriterDevice, batch)
			m.MasterBlockOn(logWriterDevice, 0)
		}
	}
}
