package workloads

import (
	"math"
	"testing"
)

func TestStreamVerifyAfterIterations(t *testing.T) {
	s := NewStream(10000)
	const iters = 7
	s.RunAll(iters, 4)
	if err := s.Verify(iters); err != nil {
		t.Fatal(err)
	}
}

func TestStreamKernelsSemantics(t *testing.T) {
	s := NewStream(100)
	s.Copy(2)
	for i, v := range s.C {
		if v != s.A[i] {
			t.Fatal("copy wrong")
		}
	}
	s.Mul(2)
	for i, v := range s.B {
		if math.Abs(v-s.Scalar*s.C[i]) > 1e-15 {
			t.Fatal("mul wrong")
		}
	}
	s.Add(2)
	for i, v := range s.C {
		if math.Abs(v-(s.A[i]+s.B[i])) > 1e-15 {
			t.Fatal("add wrong")
		}
	}
	prevB := append([]float64(nil), s.B...)
	prevC := append([]float64(nil), s.C...)
	s.Triad(2)
	for i, v := range s.A {
		if math.Abs(v-(prevB[i]+s.Scalar*prevC[i])) > 1e-15 {
			t.Fatal("triad wrong")
		}
	}
}

func TestStreamDotMatchesSerial(t *testing.T) {
	s := NewStream(12345)
	for i := range s.A {
		s.A[i] = float64(i % 17)
		s.B[i] = float64(i % 13)
	}
	var want float64
	for i := range s.A {
		want += s.A[i] * s.B[i]
	}
	got := s.Dot(8)
	if math.Abs(got-want) > math.Abs(want)*1e-12 {
		t.Fatalf("dot = %v, want %v", got, want)
	}
	if one := s.Dot(1); math.Abs(one-want) > math.Abs(want)*1e-12 {
		t.Fatalf("single-thread dot = %v, want %v", one, want)
	}
}

func TestStreamVerifyCatchesCorruption(t *testing.T) {
	s := NewStream(1000)
	s.RunAll(3, 2)
	s.A[500] += 1.0
	if err := s.Verify(3); err == nil {
		t.Fatal("corrupted array should fail verification")
	}
}

func TestStreamSpecTotals(t *testing.T) {
	s := StreamSpec{ArrayBytes: 800, Iters: 2, Units: 4}
	// 100 elems; per iter: (16+16+24+24+16)*100 = 9600; x2 = 19200.
	if got := s.TotalBytes(); got != 19200 {
		t.Fatalf("TotalBytes = %g", got)
	}
	dotOnly := StreamSpec{ArrayBytes: 800, Iters: 1, Units: 4, Kernels: []StreamKernel{KDot}}
	if got := dotOnly.TotalBytes(); got != 1600 {
		t.Fatalf("dot-only TotalBytes = %g", got)
	}
}

func TestStreamKernelStrings(t *testing.T) {
	want := map[StreamKernel]string{KCopy: "copy", KMul: "mul", KAdd: "add", KTriad: "triad", KDot: "dot"}
	for k, w := range want {
		if k.String() != w {
			t.Fatalf("kernel %d string %q", k, k.String())
		}
	}
}

func BenchmarkStreamTriadReal(b *testing.B) {
	s := NewStream(1 << 20)
	b.SetBytes(3 * 8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Triad(4)
	}
}

func BenchmarkStreamDotReal(b *testing.B) {
	s := NewStream(1 << 20)
	b.SetBytes(2 * 8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Dot(4)
	}
}
