package workloads

import (
	"fmt"
	"math"

	"repro/internal/parmodel"
)

// ---------------------------------------------------------------------------
// Real MiniFE-style kernel: an implicit 3-D finite-element style problem on
// a structured dim^3 grid with a 27-point coupling stencil, assembled into
// CSR, solved with unpreconditioned conjugate gradient. The CG building
// blocks (SpMV, dot, axpy/waxpby) are goroutine-parallel, mirroring the
// structure of the MiniFE mini-application.
// ---------------------------------------------------------------------------

// CSR is a compressed sparse row matrix.
type CSR struct {
	N      int
	RowPtr []int
	ColIdx []int
	Values []float64
}

// MiniFE is the assembled problem plus solver state.
type MiniFE struct {
	Dim int
	A   *CSR
	X   []float64 // solution
	B   []float64 // right-hand side
}

// NewMiniFE assembles the dim^3 27-point problem. The matrix is the
// diagonally dominant M-matrix with diagonal 26 and -1 couplings to all
// neighbors present in the grid, so x = ones is the solution of A x = b
// with b = A*ones.
func NewMiniFE(dim int, threads int) *MiniFE {
	n := dim * dim * dim
	m := &MiniFE{Dim: dim}
	rowPtr := make([]int, n+1)
	// First pass: count nnz per row.
	counts := make([]int, n)
	parallelRanges(n, threads, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			x, y, z := r%dim, (r/dim)%dim, r/(dim*dim)
			c := 0
			for dz := -1; dz <= 1; dz++ {
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						nx, ny, nz := x+dx, y+dy, z+dz
						if nx >= 0 && nx < dim && ny >= 0 && ny < dim && nz >= 0 && nz < dim {
							c++
						}
					}
				}
			}
			counts[r] = c
		}
	})
	for r := 0; r < n; r++ {
		rowPtr[r+1] = rowPtr[r] + counts[r]
	}
	nnz := rowPtr[n]
	colIdx := make([]int, nnz)
	values := make([]float64, nnz)
	parallelRanges(n, threads, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			x, y, z := r%dim, (r/dim)%dim, r/(dim*dim)
			p := rowPtr[r]
			for dz := -1; dz <= 1; dz++ {
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						nx, ny, nz := x+dx, y+dy, z+dz
						if nx < 0 || nx >= dim || ny < 0 || ny >= dim || nz < 0 || nz >= dim {
							continue
						}
						c := nx + ny*dim + nz*dim*dim
						colIdx[p] = c
						if c == r {
							values[p] = 26.0
						} else {
							values[p] = -1.0
						}
						p++
					}
				}
			}
		}
	})
	m.A = &CSR{N: n, RowPtr: rowPtr, ColIdx: colIdx, Values: values}
	// b = A * ones, x0 = 0 => exact solution ones.
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	m.B = make([]float64, n)
	m.A.SpMV(ones, m.B, threads)
	m.X = make([]float64, n)
	return m
}

// SpMV computes y = A*x with `threads` goroutines.
func (a *CSR) SpMV(x, y []float64, threads int) {
	parallelRanges(a.N, threads, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			var sum float64
			for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
				sum += a.Values[p] * x[a.ColIdx[p]]
			}
			y[r] = sum
		}
	})
}

// NNZ returns the number of stored nonzeros.
func (a *CSR) NNZ() int { return len(a.Values) }

func dotVec(a, b []float64, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	partials := make([]float64, threads)
	parallelIndexedRanges(len(a), threads, func(t, lo, hi int) {
		var sum float64
		for i := lo; i < hi; i++ {
			sum += a[i] * b[i]
		}
		partials[t] = sum
	})
	var total float64
	for _, p := range partials {
		total += p
	}
	return total
}

// waxpby computes w = alpha*x + beta*y.
func waxpby(w []float64, alpha float64, x []float64, beta float64, y []float64, threads int) {
	parallelRanges(len(w), threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			w[i] = alpha*x[i] + beta*y[i]
		}
	})
}

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	Iters    int
	Residual float64 // final ||r||_2
}

// SolveCG runs up to maxIters of conjugate gradient (or until the residual
// norm falls below tol) and returns the iteration count and final residual.
func (m *MiniFE) SolveCG(maxIters int, tol float64, threads int) CGResult {
	n := m.A.N
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	// r = b - A*x (x starts at 0 so r = b).
	m.A.SpMV(m.X, ap, threads)
	waxpby(r, 1, m.B, -1, ap, threads)
	copy(p, r)
	rr := dotVec(r, r, threads)
	var it int
	for it = 0; it < maxIters && math.Sqrt(rr) > tol; it++ {
		m.A.SpMV(p, ap, threads)
		alpha := rr / dotVec(p, ap, threads)
		waxpby(m.X, 1, m.X, alpha, p, threads)
		waxpby(r, 1, r, -alpha, ap, threads)
		rrNew := dotVec(r, r, threads)
		beta := rrNew / rr
		rr = rrNew
		waxpby(p, 1, r, beta, p, threads)
	}
	return CGResult{Iters: it, Residual: math.Sqrt(rr)}
}

// SolutionError returns max |x_i - 1|, the error against the known exact
// solution.
func (m *MiniFE) SolutionError() float64 {
	var worst float64
	for _, v := range m.X {
		if e := math.Abs(v - 1); e > worst {
			worst = e
		}
	}
	return worst
}

// ---------------------------------------------------------------------------
// Simulation cost model
// ---------------------------------------------------------------------------

// MiniFESpec is the MiniFE cost model: an assembly phase followed by
// CGIters conjugate-gradient iterations, each comprising one SpMV (memory-
// heavy with irregular gather compute), two dots (memory + serial
// reduction) and three waxpby updates (pure streaming). Its many small
// kernels per iteration are what expose SYCL's per-kernel submission
// overhead, and its SYCLFactor carries the large DPC++ SpMV gather
// inefficiency the paper's ~1.9x baseline gap implies.
type MiniFESpec struct {
	// Dim is the grid dimension; rows = Dim^3, nnz ~= 27*Dim^3.
	Dim int
	// CGIters is the number of CG iterations (MiniFE runs a fixed count).
	CGIters int
	// Units is the number of work units per kernel.
	Units int
	// SYCLFactor is the DPC++-vs-OpenMP gap for this application.
	SYCLFactor float64
}

// DefaultMiniFESpec sizes the problem so the Intel baseline lands near the
// paper's ~1.06 s.
func DefaultMiniFESpec() MiniFESpec {
	return MiniFESpec{
		Dim:        96,
		CGIters:    72,
		SYCLFactor: 1.75,
	}
}

// Name implements Workload.
func (s MiniFESpec) Name() string { return "minife" }

// Body implements Workload.
func (s MiniFESpec) Body() parmodel.Body {
	return func(m parmodel.Model) {
		f := syclScale(m, s.SYCLFactor)
		units := unitsFor(m, s.Units)
		rows := float64(s.Dim) * float64(s.Dim) * float64(s.Dim)
		nnz := rows * 27
		vecBytes := rows * 8

		// Assembly: compute element operators + scatter into CSR. Mixed
		// compute and memory, one pass.
		asmUnit := parmodel.Cost{
			Cycles: nnz * 6 / float64(units) * f,
			Bytes:  nnz * 16 / float64(units) * f,
		}
		m.ParallelFor(units, func(int) parmodel.Cost { return asmUnit })

		spmvUnit := parmodel.Cost{
			// Gather + FMA per nonzero; ~2 cycles each for OpenMP.
			Cycles: nnz * 2 / float64(units) * f,
			// values + colidx reads + x gather traffic + y write.
			Bytes: (nnz*12 + vecBytes*2) / float64(units) * f,
		}
		dotUnit := parmodel.Cost{
			Cycles: rows * 1 / float64(units) * f,
			Bytes:  vecBytes * 2 / float64(units) * f,
		}
		waxpbyUnit := parmodel.Cost{
			Cycles: rows * 1 / float64(units) * f,
			Bytes:  vecBytes * 3 / float64(units) * f,
		}
		for it := 0; it < s.CGIters; it++ {
			m.ParallelFor(units, func(int) parmodel.Cost { return spmvUnit })
			for d := 0; d < 2; d++ {
				m.ParallelFor(units, func(int) parmodel.Cost { return dotUnit })
				m.MasterCompute(float64(m.Threads()) * 30 * f)
			}
			for w := 0; w < 3; w++ {
				m.ParallelFor(units, func(int) parmodel.Cost { return waxpbyUnit })
			}
		}
	}
}

// String describes the spec.
func (s MiniFESpec) String() string {
	return fmt.Sprintf("minife dim=%d cg=%d", s.Dim, s.CGIters)
}
