package workloads

import (
	"fmt"
	"math"

	"repro/internal/parmodel"
)

// ---------------------------------------------------------------------------
// Real Babelstream kernel: the five STREAM-style kernels (copy, mul, add,
// triad, dot) over large float64 arrays, goroutine-parallel.
// ---------------------------------------------------------------------------

// Stream holds the three Babelstream arrays and scalar.
type Stream struct {
	A, B, C []float64
	Scalar  float64
}

// Babelstream initial values, matching the reference implementation.
const (
	streamInitA  = 0.1
	streamInitB  = 0.2
	streamInitC  = 0.0
	streamScalar = 0.4
)

// NewStream allocates and initializes arrays of n elements.
func NewStream(n int) *Stream {
	s := &Stream{
		A:      make([]float64, n),
		B:      make([]float64, n),
		C:      make([]float64, n),
		Scalar: streamScalar,
	}
	for i := 0; i < n; i++ {
		s.A[i] = streamInitA
		s.B[i] = streamInitB
		s.C[i] = streamInitC
	}
	return s
}

// Copy executes c[i] = a[i].
func (s *Stream) Copy(threads int) {
	parallelRanges(len(s.A), threads, func(lo, hi int) {
		copy(s.C[lo:hi], s.A[lo:hi])
	})
}

// Mul executes b[i] = scalar * c[i].
func (s *Stream) Mul(threads int) {
	parallelRanges(len(s.A), threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.B[i] = s.Scalar * s.C[i]
		}
	})
}

// Add executes c[i] = a[i] + b[i].
func (s *Stream) Add(threads int) {
	parallelRanges(len(s.A), threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.C[i] = s.A[i] + s.B[i]
		}
	})
}

// Triad executes a[i] = b[i] + scalar * c[i].
func (s *Stream) Triad(threads int) {
	parallelRanges(len(s.A), threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.A[i] = s.B[i] + s.Scalar*s.C[i]
		}
	})
}

// Dot returns sum(a[i] * b[i]), reduced across threads.
func (s *Stream) Dot(threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	partials := make([]float64, threads)
	parallelIndexedRanges(len(s.A), threads, func(t, lo, hi int) {
		var sum float64
		for i := lo; i < hi; i++ {
			sum += s.A[i] * s.B[i]
		}
		partials[t] = sum
	})
	var total float64
	for _, p := range partials {
		total += p
	}
	return total
}

// RunAll executes the canonical kernel sequence iters times and returns the
// last dot result.
func (s *Stream) RunAll(iters, threads int) float64 {
	var dot float64
	for k := 0; k < iters; k++ {
		s.Copy(threads)
		s.Mul(threads)
		s.Add(threads)
		s.Triad(threads)
		dot = s.Dot(threads)
	}
	return dot
}

// Verify checks array contents against the analytic expectation after iters
// iterations, like the reference implementation does.
func (s *Stream) Verify(iters int) error {
	a, b, c := streamInitA, streamInitB, streamInitC
	for k := 0; k < iters; k++ {
		c = a
		b = s.Scalar * c
		c = a + b
		a = b + s.Scalar*c
	}
	check := func(name string, arr []float64, want float64) error {
		var errSum float64
		for _, v := range arr {
			errSum += math.Abs(v - want)
		}
		if e := errSum / float64(len(arr)); e > 1e-8 {
			return fmt.Errorf("workloads: stream array %s mean error %g (want %g)", name, e, want)
		}
		return nil
	}
	if err := check("a", s.A, a); err != nil {
		return err
	}
	if err := check("b", s.B, b); err != nil {
		return err
	}
	return check("c", s.C, c)
}

// parallelIndexedRanges is parallelRanges with the worker index exposed.
func parallelIndexedRanges(n, threads int, fn func(t, lo, hi int)) {
	if threads <= 1 || n < threads {
		fn(0, 0, n)
		return
	}
	done := make(chan struct{}, threads)
	for t := 0; t < threads; t++ {
		t := t
		lo := t * n / threads
		hi := (t + 1) * n / threads
		go func() {
			fn(t, lo, hi)
			done <- struct{}{}
		}()
	}
	for t := 0; t < threads; t++ {
		<-done
	}
}

// ---------------------------------------------------------------------------
// Simulation cost model
// ---------------------------------------------------------------------------

// StreamKernel identifies one of the five Babelstream kernels.
type StreamKernel int

// The five kernels, in canonical order.
const (
	KCopy StreamKernel = iota
	KMul
	KAdd
	KTriad
	KDot
)

func (k StreamKernel) String() string {
	switch k {
	case KCopy:
		return "copy"
	case KMul:
		return "mul"
	case KAdd:
		return "add"
	case KTriad:
		return "triad"
	case KDot:
		return "dot"
	default:
		return "?"
	}
}

// bytesMoved returns the traffic per element of each kernel (read+write of
// float64 operands).
func (k StreamKernel) bytesPerElem() float64 {
	switch k {
	case KCopy, KMul:
		return 16 // one read + one write
	case KAdd, KTriad:
		return 24 // two reads + one write
	case KDot:
		return 16 // two reads
	default:
		return 0
	}
}

// StreamSpec is the Babelstream cost model: Iters iterations of the five
// kernels, each a memory-bound parallel region over Units work units.
type StreamSpec struct {
	// ArrayBytes is the size of one array in bytes.
	ArrayBytes float64
	// Iters is the number of iterations of the 5-kernel sequence.
	Iters int
	// Units is the number of work units per kernel.
	Units int
	// Kernels optionally restricts the kernel sequence (nil = all five);
	// Figure 2 uses only the dot kernel.
	Kernels []StreamKernel
	// SYCLFactor is the DPC++-vs-OpenMP gap for streaming kernels.
	SYCLFactor float64
}

// DefaultStreamSpec sizes the workload so the Intel baseline lands near the
// paper's ~1.9 s.
func DefaultStreamSpec() StreamSpec {
	return StreamSpec{
		ArrayBytes: 64 << 20, // 64 MiB per array
		Iters:      80,
		SYCLFactor: 1.10,
	}
}

// Name implements Workload.
func (s StreamSpec) Name() string { return "babelstream" }

// kernels returns the kernel list (default all five).
func (s StreamSpec) kernels() []StreamKernel {
	if len(s.Kernels) > 0 {
		return s.Kernels
	}
	return []StreamKernel{KCopy, KMul, KAdd, KTriad, KDot}
}

// TotalBytes returns the model's total memory traffic.
func (s StreamSpec) TotalBytes() float64 {
	elems := s.ArrayBytes / 8
	var per float64
	for _, k := range s.kernels() {
		per += k.bytesPerElem() * elems
	}
	return per * float64(s.Iters)
}

// Body implements Workload.
func (s StreamSpec) Body() parmodel.Body {
	return func(m parmodel.Model) {
		f := syclScale(m, s.SYCLFactor)
		units := unitsFor(m, s.Units)
		elems := s.ArrayBytes / 8
		for it := 0; it < s.Iters; it++ {
			for _, k := range s.kernels() {
				bytesPerUnit := k.bytesPerElem() * elems / float64(units)
				// A little arithmetic per element rides along (~0.5
				// cycles/elem), negligible next to bandwidth.
				cyclesPerUnit := 0.5 * elems / float64(units)
				unit := parmodel.Cost{Cycles: cyclesPerUnit * f, Bytes: bytesPerUnit * f}
				m.ParallelFor(units, func(int) parmodel.Cost { return unit })
				if k == KDot {
					// Serial reduction of per-thread partials.
					m.MasterCompute(float64(m.Threads()) * 30 * f)
				}
			}
		}
	}
}
