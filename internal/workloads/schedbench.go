package workloads

import (
	"sync"
	"sync/atomic"

	"repro/internal/parmodel"
)

// ---------------------------------------------------------------------------
// Real schedbench kernel: a loop-scheduling microbenchmark in the spirit of
// the schedbench the paper's motivation example uses — an imbalanced
// parallel loop executed under static, dynamic, or guided scheduling with a
// chunk size, measuring how scheduling interacts with load imbalance.
// ---------------------------------------------------------------------------

// SchedKind selects the real kernel's loop schedule.
type SchedKind int

// Schedule kinds for the real schedbench kernel.
const (
	SchedStatic SchedKind = iota
	SchedDynamic
	SchedGuided
)

// SchedBench runs an imbalanced loop: iteration i performs Work*(1 +
// Imbalance*i/N) spin units.
type SchedBench struct {
	N         int
	Work      int     // base spin units per iteration
	Imbalance float64 // 0 = uniform; 1 = last iteration costs 2x
}

// spin burns CPU deterministically and returns a checksum so the work is
// not optimized away.
func spin(units int) float64 {
	x := 1.0
	for i := 0; i < units; i++ {
		x += 1.0 / x
	}
	return x
}

func (sb *SchedBench) workOf(i int) int {
	return sb.Work + int(float64(sb.Work)*sb.Imbalance*float64(i)/float64(sb.N))
}

// Run executes the loop with the given schedule, chunk and thread count,
// returning a checksum.
func (sb *SchedBench) Run(kind SchedKind, chunk, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	sums := make([]float64, threads)
	switch kind {
	case SchedStatic:
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			t := t
			wg.Add(1)
			go func() {
				defer wg.Done()
				var sum float64
				for base := t * chunk; base < sb.N; base += threads * chunk {
					hi := base + chunk
					if hi > sb.N {
						hi = sb.N
					}
					for i := base; i < hi; i++ {
						sum += spin(sb.workOf(i))
					}
				}
				sums[t] = sum
			}()
		}
		wg.Wait()
	case SchedDynamic:
		var next int64
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			t := t
			wg.Add(1)
			go func() {
				defer wg.Done()
				var sum float64
				for {
					lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
					if lo >= sb.N {
						break
					}
					hi := lo + chunk
					if hi > sb.N {
						hi = sb.N
					}
					for i := lo; i < hi; i++ {
						sum += spin(sb.workOf(i))
					}
				}
				sums[t] = sum
			}()
		}
		wg.Wait()
	case SchedGuided:
		var mu sync.Mutex
		next := 0
		claim := func() (int, int) {
			mu.Lock()
			defer mu.Unlock()
			if next >= sb.N {
				return -1, -1
			}
			size := (sb.N - next + 2*threads - 1) / (2 * threads)
			if size < chunk {
				size = chunk
			}
			lo := next
			hi := lo + size
			if hi > sb.N {
				hi = sb.N
			}
			next = hi
			return lo, hi
		}
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			t := t
			wg.Add(1)
			go func() {
				defer wg.Done()
				var sum float64
				for {
					lo, hi := claim()
					if lo < 0 {
						break
					}
					for i := lo; i < hi; i++ {
						sum += spin(sb.workOf(i))
					}
				}
				sums[t] = sum
			}()
		}
		wg.Wait()
	}
	var total float64
	for _, s := range sums {
		total += s
	}
	return total
}

// ---------------------------------------------------------------------------
// Simulation cost model
// ---------------------------------------------------------------------------

// SchedBenchSpec is the schedbench cost model: Outer repetitions of a
// parallel loop of N iterations whose cost ramps with Imbalance. The OpenMP
// schedule/chunk is configured on the omprt runtime, not here, so Figure
// 1's x-axis (st/dy/gd x chunk) is a runtime-config sweep over this one
// workload.
type SchedBenchSpec struct {
	// Outer is the number of repetitions (regions).
	Outer int
	// N is the trip count per region (work units).
	N int
	// CyclesPerIter is the base cost of one iteration.
	CyclesPerIter float64
	// Imbalance ramps iteration cost: iteration i costs
	// CyclesPerIter * (1 + Imbalance*i/N).
	Imbalance float64
	// SYCLFactor for completeness; schedbench is an OpenMP-only benchmark
	// in the paper.
	SYCLFactor float64
}

// DefaultSchedBenchSpec returns a ~100 ms-per-run configuration.
func DefaultSchedBenchSpec() SchedBenchSpec {
	return SchedBenchSpec{
		Outer:         50,
		N:             512,
		CyclesPerIter: 600e3,
		Imbalance:     0.5,
		SYCLFactor:    1.0,
	}
}

// Name implements Workload.
func (s SchedBenchSpec) Name() string { return "schedbench" }

// Body implements Workload.
func (s SchedBenchSpec) Body() parmodel.Body {
	return func(m parmodel.Model) {
		f := syclScale(m, s.SYCLFactor)
		for o := 0; o < s.Outer; o++ {
			m.ParallelFor(s.N, func(i int) parmodel.Cost {
				c := s.CyclesPerIter * (1 + s.Imbalance*float64(i)/float64(s.N))
				return parmodel.Cost{Cycles: c * f}
			})
		}
	}
}
