package workloads

import (
	"testing"

	"repro/internal/sim"
)

func TestIOWorkloadsDeclareDevices(t *testing.T) {
	cases := []struct {
		w    IOWorkload
		dev  string
		name string
	}{
		{DefaultSvcLoopSpec(), svcLoopDevice, "svcloop"},
		{DefaultLogWriterSpec(), logWriterDevice, "logwriter"},
	}
	for _, c := range cases {
		devs := c.w.Devices()
		if len(devs) != 1 || devs[0].Name != c.dev {
			t.Fatalf("%s: devices %+v, want one named %q", c.name, devs, c.dev)
		}
		if devs[0].Latency <= 0 || devs[0].BytesPerNs <= 0 {
			t.Fatalf("%s: device %+v must have positive latency and bandwidth", c.name, devs[0])
		}
	}
}

// TestSvcLoopDeviceBound: the service loop's run time is dominated by the
// serial NIC, so doubling device latency moves run time far more than the
// same simulation with a faster NIC would suggest from compute alone.
func TestSvcLoopDeviceBound(t *testing.T) {
	base, _ := ByName("svcloop", "small")
	slow := base.(SvcLoopSpec)
	slow.NICLatency *= 2
	tBase := runModel(t, base, "omp")
	tSlow := runModel(t, slow, "omp")
	if tSlow <= tBase {
		t.Fatalf("doubled NIC latency: %v should exceed %v", tSlow, tBase)
	}
	// Under the default static schedule each of the 4 team threads
	// (TinyTest under TP) coalesces its range into one NIC request per
	// round; the requests serialize on the device, so every round stretches
	// by ~4x the added latency. Require at least 3x to leave slack.
	sp := base.(SvcLoopSpec)
	minDelta := sim.Time(sp.Outer) * 3 * (slow.NICLatency - sp.NICLatency)
	if tSlow-tBase < minDelta {
		t.Fatalf("latency delta %v too small for a device-bound loop (want >= %v)",
			tSlow-tBase, minDelta)
	}
}

// TestLogWriterFsyncOnCriticalPath: each batch pays the disk latency at
// least twice (write + fsync barrier), serially on the master.
func TestLogWriterFsyncOnCriticalPath(t *testing.T) {
	w, _ := ByName("logwriter", "small")
	spec := w.(LogWriterSpec)
	got := runModel(t, spec, "omp")
	floor := sim.Time(spec.Outer) * 2 * spec.DiskLatency
	if got < floor {
		t.Fatalf("run time %v below the fsync floor %v", got, floor)
	}
}
