package workloads

import (
	"math"
	"testing"

	"repro/internal/cpusched"
	"repro/internal/machine"
	"repro/internal/mitigate"
	"repro/internal/omprt"
	"repro/internal/parmodel"
	"repro/internal/sim"
	"repro/internal/syclrt"
)

func TestSchedBenchChecksumsAgree(t *testing.T) {
	sb := &SchedBench{N: 200, Work: 50, Imbalance: 1.0}
	ref := sb.Run(SchedStatic, 1, 1)
	for _, kind := range []SchedKind{SchedStatic, SchedDynamic, SchedGuided} {
		for _, chunk := range []int{1, 4, 16} {
			for _, threads := range []int{1, 2, 4} {
				got := sb.Run(kind, chunk, threads)
				if math.Abs(got-ref) > math.Abs(ref)*1e-12 {
					t.Fatalf("kind=%d chunk=%d threads=%d checksum %v != %v",
						kind, chunk, threads, got, ref)
				}
			}
		}
	}
}

func TestSchedBenchWorkRamp(t *testing.T) {
	sb := &SchedBench{N: 100, Work: 100, Imbalance: 1.0}
	if sb.workOf(0) != 100 {
		t.Fatalf("workOf(0) = %d", sb.workOf(0))
	}
	if sb.workOf(99) != 199 {
		t.Fatalf("workOf(99) = %d", sb.workOf(99))
	}
}

// runModel executes a workload cost model on the simulated tiny machine and
// returns the wall time.
func runModel(t *testing.T, w Workload, model string) sim.Time {
	t.Helper()
	eng := sim.NewEngine()
	topo := machine.MustPreset(machine.TinyTest)
	opt := cpusched.Defaults()
	s := cpusched.New(eng, topo, opt)
	if iow, ok := w.(IOWorkload); ok {
		for _, d := range iow.Devices() {
			s.AddDevice(d)
		}
	}
	plan := mitigate.MustApply(mitigate.TP, topo)
	var doneTask *cpusched.Task
	switch model {
	case "omp":
		team := omprt.Start(s, plan, omprt.DefaultConfig(), w.Body())
		doneTask = team.Master()
	case "sycl":
		q := syclrt.Start(s, plan, syclrt.DefaultConfig(), w.Body())
		doneTask = q.Host()
	default:
		t.Fatalf("bad model %q", model)
	}
	eng.RunWhile(func() bool { return !doneTask.Done() })
	end := eng.Now()
	s.Shutdown()
	return end
}

func smallSpecs(t *testing.T) []Workload {
	t.Helper()
	var out []Workload
	for _, name := range Names() {
		w, err := ByName(name, "small")
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, w)
	}
	return out
}

func TestModelsRunOnBothRuntimes(t *testing.T) {
	for _, w := range smallSpecs(t) {
		omp := runModel(t, w, "omp")
		sycl := runModel(t, w, "sycl")
		if omp <= 0 || sycl <= 0 {
			t.Fatalf("%s: zero exec time", w.Name())
		}
		switch w.Name() {
		case "schedbench", "svcloop", "logwriter":
			// schedbench is OpenMP-only in the paper; the I/O workloads are
			// device-paced, so the runtimes' compute-efficiency gap need not
			// dominate. Factor 1.0 for all three.
			continue
		}
		if sycl <= omp {
			t.Fatalf("%s: SYCL (%v) should be slower raw than OMP (%v)", w.Name(), sycl, omp)
		}
	}
}

func TestSYCLGapOrderingAcrossWorkloads(t *testing.T) {
	// The paper's baselines: MiniFE has the largest SYCL/OMP gap, then
	// N-body, then Babelstream.
	gap := func(name string) float64 {
		w, err := ByName(name, "small")
		if err != nil {
			t.Fatal(err)
		}
		omp := runModel(t, w, "omp")
		sycl := runModel(t, w, "sycl")
		return float64(sycl) / float64(omp)
	}
	nbody := gap("nbody")
	stream := gap("babelstream")
	minife := gap("minife")
	if !(minife > nbody && nbody > stream && stream > 1.0) {
		t.Fatalf("gap ordering wrong: minife=%.2f nbody=%.2f stream=%.2f", minife, nbody, stream)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("fft", "small"); err == nil {
		t.Fatal("unknown workload should error")
	}
}

func TestDefaultSpecsNamed(t *testing.T) {
	if DefaultNBodySpec().Name() != "nbody" ||
		DefaultStreamSpec().Name() != "babelstream" ||
		DefaultMiniFESpec().Name() != "minife" ||
		DefaultSchedBenchSpec().Name() != "schedbench" ||
		DefaultSvcLoopSpec().Name() != "svcloop" ||
		DefaultLogWriterSpec().Name() != "logwriter" {
		t.Fatal("spec names wrong")
	}
	if len(Names()) != 6 {
		t.Fatal("Names() should list 6 workloads")
	}
}

func TestSchedBenchModelImbalanceVisible(t *testing.T) {
	// Static scheduling of an imbalanced ramp is slower than dynamic with
	// small chunks (the classic schedbench observation).
	spec := SchedBenchSpec{Outer: 5, N: 256, CyclesPerIter: 300e3, Imbalance: 2.0}
	run := func(schedKind omprt.Schedule, chunk int) sim.Time {
		eng := sim.NewEngine()
		topo := machine.MustPreset(machine.TinyTest)
		s := cpusched.New(eng, topo, cpusched.Defaults())
		plan := mitigate.MustApply(mitigate.TP, topo)
		cfg := omprt.DefaultConfig()
		cfg.Schedule = schedKind
		cfg.Chunk = chunk
		team := omprt.Start(s, plan, cfg, spec.Body())
		eng.RunWhile(func() bool { return !team.Master().Done() })
		end := eng.Now()
		s.Shutdown()
		return end
	}
	static := run(omprt.Static, 0)
	dynamic := run(omprt.Dynamic, 4)
	if dynamic >= static {
		t.Fatalf("dynamic (%v) should beat static (%v) on an imbalanced ramp", dynamic, static)
	}
}

var modelSink parmodel.Cost

func BenchmarkNBodyModelSim(b *testing.B) {
	w, _ := ByName("nbody", "small")
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		topo := machine.MustPreset(machine.TinyTest)
		s := cpusched.New(eng, topo, cpusched.Defaults())
		plan := mitigate.MustApply(mitigate.TP, topo)
		team := omprt.Start(s, plan, omprt.DefaultConfig(), w.Body())
		eng.RunWhile(func() bool { return !team.Master().Done() })
		s.Shutdown()
	}
}
