// Package workloads implements the paper's workloads — N-body and
// Babelstream benchmarks, the MiniFE mini-application, and schedbench (the
// motivation example) — each in two forms:
//
//   - A real, goroutine-parallel Go kernel (NBody, Stream, MiniFE,
//     SchedBench types) with verified numerics, usable natively and in
//     testing.B benchmarks.
//   - A simulation cost model (the *Spec types' Body method), which maps
//     the same computational structure — parallel regions, work units,
//     compute cycles, memory traffic, reductions — onto the simulated
//     machine through a parmodel.Model (omprt or syclrt).
//
// The SYCLFactor on each spec carries the per-workload efficiency gap
// between the DPC++ and OpenMP binaries observed in the paper's baselines
// (N-body ~1.3x, Babelstream ~1.1x, MiniFE ~1.9x), applied only when the
// model identifies as "sycl".
package workloads

import (
	"fmt"

	"repro/internal/cpusched"
	"repro/internal/parmodel"
)

// Workload is a named simulation cost model.
type Workload interface {
	// Name returns the workload's short name ("nbody", "babelstream",
	// "minife", "schedbench", "svcloop", "logwriter").
	Name() string
	// Body returns the workload body to run against a runtime model.
	Body() parmodel.Body
}

// IOWorkload is implemented by workloads that block on simulated devices.
// The experiment layer registers the declared devices on the scheduler
// before the workload starts; a body referencing an undeclared device name
// panics at run time.
type IOWorkload interface {
	Workload
	// Devices lists the devices the workload blocks on.
	Devices() []cpusched.DeviceSpec
}

// syclScale returns the per-workload cost multiplier for the given model.
func syclScale(m parmodel.Model, factor float64) float64 {
	if m.Name() == "sycl" && factor > 0 {
		return factor
	}
	return 1.0
}

// unitsFor resolves a spec's work-unit count: an explicit positive value is
// used as-is; otherwise 8 units per team thread, which divides evenly for
// every strategy (so static partitioning has no remainder imbalance, as
// with real iteration counts that dwarf the thread count) while leaving
// dynamic schedules enough chunks to redistribute.
func unitsFor(m parmodel.Model, explicit int) int {
	if explicit > 0 {
		return explicit
	}
	return m.Threads() * 8
}

// ByName constructs a workload with the given per-platform size preset.
// Sizes are chosen in the experiment package; this helper serves the CLI.
func ByName(name string, size string) (Workload, error) {
	small := size == "small"
	switch name {
	case "nbody":
		s := DefaultNBodySpec()
		if small {
			s.Bodies = 4096
			s.Steps = 4
		}
		return s, nil
	case "babelstream":
		s := DefaultStreamSpec()
		if small {
			s.ArrayBytes = 8 << 20
			s.Iters = 10
		}
		return s, nil
	case "minife":
		s := DefaultMiniFESpec()
		if small {
			s.Dim = 32
			s.CGIters = 15
		}
		return s, nil
	case "schedbench":
		s := DefaultSchedBenchSpec()
		if small {
			s.Outer = 10
		}
		return s, nil
	case "svcloop":
		s := DefaultSvcLoopSpec()
		if small {
			s.Outer = 8
			s.Requests = 64
		}
		return s, nil
	case "logwriter":
		s := DefaultLogWriterSpec()
		if small {
			s.Outer = 10
			s.Records = 128
		}
		return s, nil
	default:
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
}

// Names lists the available workloads.
func Names() []string {
	return []string{"nbody", "babelstream", "minife", "schedbench", "svcloop", "logwriter"}
}
