package workloads

import (
	"math"
	"testing"
)

func TestNBodyEnergyConservation(t *testing.T) {
	b := NewNBody(256, 1)
	e0 := b.Energy()
	b.Run(20, 1e-4, 4)
	e1 := b.Energy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 0.01 {
		t.Fatalf("energy drift %.4f%% too large (e0=%g e1=%g)", drift*100, e0, e1)
	}
}

func TestNBodyDeterministicInit(t *testing.T) {
	a := NewNBody(64, 7)
	b := NewNBody(64, 7)
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
			t.Fatal("same seed must give identical initial conditions")
		}
	}
	c := NewNBody(64, 8)
	if a.Pos[0] == c.Pos[0] {
		t.Fatal("different seeds should differ")
	}
}

func TestNBodyParallelMatchesSerial(t *testing.T) {
	serial := NewNBody(128, 3)
	parallel := NewNBody(128, 3)
	serial.Run(5, 1e-4, 1)
	parallel.Run(5, 1e-4, 4)
	for i := range serial.Pos {
		for d := 0; d < 3; d++ {
			if math.Abs(serial.Pos[i][d]-parallel.Pos[i][d]) > 1e-12 {
				t.Fatalf("body %d diverged between serial and parallel", i)
			}
		}
	}
}

func TestNBodyTwoBodyAttraction(t *testing.T) {
	b := &NBody{
		N:          2,
		Pos:        [][3]float64{{0, 0, 0}, {1, 0, 0}},
		Vel:        make([][3]float64, 2),
		Mass:       []float64{1, 1},
		Softening2: 1e-9,
		G:          1,
	}
	acc := make([][3]float64, 2)
	b.Accel(acc, 0, 2)
	if acc[0][0] <= 0 || acc[1][0] >= 0 {
		t.Fatalf("bodies must attract: %v", acc)
	}
	if math.Abs(acc[0][0]+acc[1][0]) > 1e-6 {
		t.Fatalf("forces must be equal and opposite: %v", acc)
	}
	// |a| = G*m/r^2 = 1.
	if math.Abs(acc[0][0]-1) > 1e-3 {
		t.Fatalf("acceleration magnitude %v, want ~1", acc[0][0])
	}
}

func TestNBodySpecTotals(t *testing.T) {
	s := NBodySpec{Bodies: 1000, Steps: 4, Units: 8, CyclesPerPair: 2}
	if got := s.TotalCycles(); got != 1000*1000*4*2 {
		t.Fatalf("TotalCycles = %g", got)
	}
	if s.Name() != "nbody" {
		t.Fatal("name")
	}
}

func BenchmarkNBodyStepReal(b *testing.B) {
	nb := NewNBody(2048, 1)
	acc := make([][3]float64, nb.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb.Step(1e-4, 4, acc)
	}
}
