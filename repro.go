// Package repro is the public API of noiselab, a reproduction of
// "Reproducible Performance Evaluation of OpenMP and SYCL Workloads under
// Noise Injection" (SC-W '25). It exposes the noise-injector pipeline
// (trace collection → delta refinement → config generation → replay), the
// simulated platforms and workloads, the mitigation strategies, and the
// studies that regenerate every table and figure of the paper.
//
// The heavy lifting lives in internal packages; this package re-exports the
// surface a downstream user needs:
//
//	p, _ := repro.NewPlatform(repro.Intel9700KF)
//	w, _ := p.WorkloadSpec("babelstream")
//	cfg, pipeline, _ := repro.BuildConfig(p, "babelstream",
//	    repro.ConfigSource{Model: "omp", Strategy: repro.Rm, ID: 1}, 200, true, 1)
//	res, _ := repro.RunOnce(repro.Spec{
//	    Platform: p, Workload: w, Model: "omp", Strategy: repro.RmHK,
//	    Seed: 7, Inject: cfg,
//	})
//	fmt.Println(res.ExecTime, pipeline.Worst.ExecTime)
package repro

import (
	"context"
	"io"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/machine"
	"repro/internal/mitigate"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Platform preset names.
const (
	Intel9700KF = machine.Intel9700KF
	AMD9950X3D  = machine.AMD9950X3D
	A64FXRsv    = machine.A64FXRsv
	A64FXNoRsv  = machine.A64FXNoRsv
)

// Core types re-exported for downstream use.
type (
	// Platform bundles machine topology, noise profile and scheduler
	// options for one experimental platform.
	Platform = platform.Platform
	// Workload is a named simulation cost model.
	Workload = workloads.Workload
	// Strategy is a mitigation configuration (pinning, housekeeping, SMT).
	Strategy = mitigate.Strategy
	// Plan is the concrete execution plan a strategy yields on a machine.
	Plan = mitigate.Plan
	// Config is a generated noise-injection configuration (Figure 5).
	Config = core.Config
	// NoiseEvent is one event of a Config.
	NoiseEvent = core.NoiseEvent
	// Trace is an osnoise-style execution trace (Figure 3).
	Trace = trace.Trace
	// Profile is the per-source average noise profile of a trace set.
	Profile = trace.Profile
	// Spec describes one simulated execution.
	Spec = experiment.Spec
	// Result is the outcome of one execution.
	Result = experiment.Result
	// Pipeline bundles the three-stage injector flow.
	Pipeline = experiment.Pipeline
	// PipelineResult carries the pipeline's artifacts.
	PipelineResult = experiment.PipelineResult
	// ConfigSource names the workload configuration a worst case is
	// hunted under.
	ConfigSource = experiment.ConfigSource
	// RepCounts sets study repetition counts.
	RepCounts = experiment.RepCounts
	// Time is simulated time in nanoseconds.
	Time = sim.Time
	// Executor is the deterministic parallel execution layer: it fans the
	// independent (spec, seed) reps of a series over a bounded worker
	// pool with output bit-identical to sequential execution. The zero
	// value uses REPRO_PARALLEL or GOMAXPROCS workers; Parallelism: 1
	// forces sequential. Every study type carries one in its Exec field.
	Executor = experiment.Executor
	// ProgressFunc receives study-cell completion updates (Executor.OnCell).
	ProgressFunc = experiment.ProgressFunc
	// BatchPolicy selects the batched-rep snapshot/fork fast path
	// (Executor.Batch). Output is byte-identical either way; the policy
	// only trades construction work for snapshot bookkeeping.
	BatchPolicy = experiment.BatchPolicy
	// WorldPool holds warm per-(topology, scheduler-options) worlds the
	// batched path forks between reps (Executor.Worlds). Safe for
	// concurrent use; share one across studies to reuse construction work.
	WorldPool = experiment.WorldPool
)

// Batch policies for Executor.Batch.
const (
	// BatchAuto batches any series of at least experiment.BatchThreshold
	// reps (the zero value and the default).
	BatchAuto = experiment.BatchAuto
	// BatchOn batches every eligible series regardless of rep count.
	BatchOn = experiment.BatchOn
	// BatchOff always rebuilds worlds from scratch (the legacy path).
	BatchOff = experiment.BatchOff
)

// ParseBatchPolicy parses "auto", "on" or "off" (the -batch CLI values).
func ParseBatchPolicy(s string) (BatchPolicy, error) { return experiment.ParseBatchPolicy(s) }

// NewWorldPool returns an empty warm-world pool for Executor.Worlds.
func NewWorldPool() *WorldPool { return experiment.NewWorldPool() }

// ModelVersion identifies the simulation semantics; runs are pure
// functions of (spec, seed, ModelVersion). The noiselabd result cache
// folds it into every cache key, so bumping it (done whenever a change
// could alter simulated output) invalidates stale cached results.
const ModelVersion = experiment.ModelVersion

// Mitigation strategy columns (paper §5 labels).
var (
	Rm    = mitigate.Rm
	RmHK  = mitigate.RmHK
	RmHK2 = mitigate.RmHK2
	TP    = mitigate.TP
	TPHK  = mitigate.TPHK
	TPHK2 = mitigate.TPHK2
)

// Strategies returns the six strategy columns in paper order.
func Strategies() []Strategy { return mitigate.Columns() }

// NewPlatform returns a platform by preset name (see the exported
// constants; PlatformNames lists them).
func NewPlatform(name string) (*Platform, error) { return platform.New(name) }

// PlatformNames lists the platforms with full experiment support.
func PlatformNames() []string { return platform.Names() }

// WorkloadNames lists the available workloads.
func WorkloadNames() []string { return workloads.Names() }

// RunOnce executes one simulated run.
func RunOnce(spec Spec) (Result, error) { return experiment.RunOnce(spec) }

// RunSeries executes reps runs with derived seeds, returning execution
// times and (when tracing) traces. Reps fan out over the default
// Executor's worker pool; results are bit-identical to sequential
// execution. Use an explicit Executor (RunSeriesExec) to bound or disable
// the parallelism, cancel mid-series, or observe progress.
func RunSeries(spec Spec, reps int) ([]Time, []*Trace, error) {
	return experiment.RunSeries(spec, reps)
}

// RunSeriesExec is RunSeries under an explicit executor and context.
func RunSeriesExec(ctx context.Context, e Executor, spec Spec, reps int) ([]Time, []*Trace, error) {
	return e.Series(ctx, spec, reps)
}

// BuildConfig runs injector stages 1+2: collect traces under the source
// configuration, select the worst case, subtract the average noise, and
// generate the injection config (improved or original merge).
func BuildConfig(p *Platform, workload string, src ConfigSource,
	collectRuns int, improved bool, seed uint64) (*Config, *PipelineResult, error) {
	return experiment.BuildConfig(p, workload, src, collectRuns, improved, seed)
}

// BuildConfigExec is BuildConfig under an explicit executor and context.
func BuildConfigExec(ctx context.Context, e Executor, p *Platform, workload string,
	src ConfigSource, collectRuns int, improved bool, seed uint64) (*Config, *PipelineResult, error) {
	return experiment.BuildConfigExec(ctx, e, p, workload, src, collectRuns, improved, seed)
}

// Refine subtracts the average inherent noise from a worst-case trace
// (§4.2, Figure 4).
func Refine(worst *Trace, profile *Profile) *Trace { return core.Refine(worst, profile) }

// Generate builds the injection config from a refined trace (Figure 5).
func Generate(refined *Trace, improved bool) *Config { return core.Generate(refined, improved) }

// BuildProfile aggregates per-source statistics over traces.
func BuildProfile(traces []*Trace) *Profile { return trace.BuildProfile(traces) }

// WorstCase selects the slowest execution from a trace set.
func WorstCase(traces []*Trace) (*Trace, int, error) { return trace.WorstCase(traces) }

// WriteTraceText renders a trace in the paper's Figure-3 text format.
func WriteTraceText(w io.Writer, tr *Trace) error { return trace.WriteText(w, tr) }

// ReadTraceText parses the Figure-3 text format.
func ReadTraceText(r io.Reader) (*Trace, error) { return trace.ReadText(r) }

// Studies and rendering (Tables 1-7, Figures 1-2).
type (
	// BaselineStudy measures run-to-run variability per model/strategy.
	BaselineStudy = experiment.BaselineStudy
	// BaselineResult holds a baseline study's cells.
	BaselineResult = experiment.BaselineResult
	// InjectionStudy produces a Tables-3/4/5 dataset for one workload.
	InjectionStudy = experiment.InjectionStudy
	// InjectionResult is the dataset behind an injection table.
	InjectionResult = experiment.InjectionResult
	// AccuracyStudy measures replay accuracy (Table 7).
	AccuracyStudy = experiment.AccuracyStudy
	// AccuracyEntry is one Table-7 row.
	AccuracyEntry = experiment.AccuracyEntry
	// AccuracyCase names one Table-7 configuration.
	AccuracyCase = experiment.AccuracyCase
	// OverheadRow is one Table-1 row.
	OverheadRow = experiment.OverheadRow
	// FigureSeries is one box of a motivation figure.
	FigureSeries = experiment.FigureSeries
	// IntensitySweep replays amplified worst cases across strategies.
	IntensitySweep = experiment.IntensitySweep
	// IntensityPoint is one sweep measurement.
	IntensityPoint = experiment.IntensityPoint
	// RenderTable is a renderable text/CSV table.
	RenderTable = report.Table
	// Advisor benchmarks strategies and recommends one (paper §6).
	Advisor = advisor.Advisor
	// Objective weights average vs worst-case time in recommendations.
	Objective = advisor.Objective
	// Recommendation is the advisor's output.
	Recommendation = advisor.Recommendation
	// MemoryNoiseSpec builds synthetic memory-interference configs (§7).
	MemoryNoiseSpec = core.MemoryNoiseSpec
	// IONoiseSpec builds synthetic I/O-interference storms (§7).
	IONoiseSpec = core.IONoiseSpec
)

// Simulated datacenter: the multi-node layer behind `noiselab cluster`.
type (
	// ClusterSpec describes one cluster scenario (nodes, straggler,
	// tenants, fork-join job shape, placement policy).
	ClusterSpec = cluster.Spec
	// ClusterRunResult is the deterministic outcome of one cluster run.
	ClusterRunResult = cluster.Result
	// ClusterStudy compares placement policies on one scenario.
	ClusterStudy = experiment.ClusterStudy
	// ClusterStudyResult holds the study's per-policy cells.
	ClusterStudyResult = experiment.ClusterStudyResult
	// ClusterCell is one policy's aggregated outcome.
	ClusterCell = experiment.ClusterCell
)

// Placement policy names accepted by ClusterSpec.Policy.
const (
	PolicyRandom     = cluster.PolicyRandom
	PolicyRoundRobin = cluster.PolicyRoundRobin
	PolicyLeastLoad  = cluster.PolicyLeastLoad
	PolicyNoiseAware = cluster.PolicyNoiseAware
)

// PolicyNames lists the available placement policies.
func PolicyNames() []string { return cluster.PolicyNames() }

// RunCluster executes one cluster run: a pure function of (spec, seed).
func RunCluster(spec ClusterSpec, seed uint64) (*ClusterRunResult, error) {
	return cluster.Run(spec, seed, nil)
}

// StragglerStudySpec returns the headline straggler-sensitivity scenario.
func StragglerStudySpec() ClusterSpec { return cluster.StragglerStudySpec() }

// DefaultReps returns CI-scale repetition counts (the paper uses
// 1000/1000/200).
func DefaultReps() RepCounts { return experiment.DefaultReps() }

// TracingOverhead measures Table 1.
func TracingOverhead(p *Platform, workloadNames []string, reps int, seed uint64) ([]OverheadRow, error) {
	return experiment.TracingOverhead(p, workloadNames, reps, seed)
}

// TracingOverheadExec is TracingOverhead under an explicit executor and
// context.
func TracingOverheadExec(ctx context.Context, e Executor, p *Platform,
	workloadNames []string, reps int, seed uint64) ([]OverheadRow, error) {
	return experiment.TracingOverheadExec(ctx, e, p, workloadNames, reps, seed)
}

// PaperAccuracyCases returns the ten Table-7 trace configurations.
func PaperAccuracyCases() []AccuracyCase { return experiment.PaperAccuracyCases() }

// AggregateChange computes Table 6 from injection results.
func AggregateChange(tables []*InjectionResult) map[string][]float64 {
	return experiment.AggregateChange(tables)
}

// MeanAccuracy averages absolute accuracy across Table-7 entries.
func MeanAccuracy(entries []AccuracyEntry) float64 { return experiment.MeanAccuracy(entries) }

// Figure1 regenerates the schedbench motivation figure series.
func Figure1(reps int, seed uint64) ([]FigureSeries, error) { return experiment.Figure1(reps, seed) }

// Figure2 regenerates the Babelstream-dot motivation figure series.
func Figure2(reps int, seed uint64) ([]FigureSeries, error) { return experiment.Figure2(reps, seed) }

// Figure1Exec is Figure1 under an explicit executor and context.
func Figure1Exec(ctx context.Context, e Executor, reps int, seed uint64) ([]FigureSeries, error) {
	return experiment.Figure1Exec(ctx, e, reps, seed)
}

// Figure2Exec is Figure2 under an explicit executor and context.
func Figure2Exec(ctx context.Context, e Executor, reps int, seed uint64) ([]FigureSeries, error) {
	return experiment.Figure2Exec(ctx, e, reps, seed)
}

// CrossoverFactor finds the sweep factor where strategy b overtakes a.
func CrossoverFactor(points []IntensityPoint, a, b Strategy) float64 {
	return experiment.CrossoverFactor(points, a, b)
}

// MergeConfigs overlays two noise configurations.
func MergeConfigs(a, b *Config) (*Config, error) { return core.MergeConfigs(a, b) }

// AmplifyConfig scales a configuration's noise by factor.
func AmplifyConfig(c *Config, factor float64) (*Config, error) { return core.AmplifyConfig(c, factor) }

// Rendering helpers.
var (
	// RenderTable1 renders tracing-overhead rows.
	RenderTable1 = report.Table1
	// RenderTable2 renders baseline standard deviations.
	RenderTable2 = report.Table2
	// RenderInjectionTable renders a Tables-3/4/5 dataset.
	RenderInjectionTable = report.InjectionTable
	// RenderTable6 renders the aggregate change.
	RenderTable6 = report.Table6
	// RenderTable7 renders accuracy entries.
	RenderTable7 = report.Table7
	// RenderFigure renders a figure's box series.
	RenderFigure = report.Figure
	// RenderBoxPlot renders figure series as ASCII box plots.
	RenderBoxPlot = report.BoxPlotString
	// CheckInjectionShape verifies the paper's headline directions.
	CheckInjectionShape = report.CheckInjectionShape
	// WriteChecks renders shape-check results.
	WriteChecks = report.WriteChecks
)
