package repro

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation benches for the design choices DESIGN.md calls
// out. Each benchmark regenerates its table/figure data and prints the
// rendered rows once (the first iteration), then reports summary values as
// custom metrics.
//
// Repetition counts are scaled-down defaults (the paper uses 1000 baseline
// and 200 injection reps); set REPRO_SCALE (e.g. "4") to multiply them, or
// use cmd/noiselab for full control. Results are cached across benchmarks
// within one `go test -bench` process so Table 6 reuses Tables 3-5.
//
// Repetitions fan out over the deterministic parallel execution layer
// (experiment.Executor): results are bit-identical at any worker count.
// Set REPRO_PARALLEL (e.g. "8") to bound the pool; it defaults to
// GOMAXPROCS. BenchmarkParallelSpeedup reports the measured
// sequential-vs-parallel ratio on this machine.

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/machine"
	"repro/internal/mitigate"
	"repro/internal/obs"
	"repro/internal/omprt"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workloads"
)

const benchSeed = 20250706

func benchScale() float64 {
	if v := os.Getenv("REPRO_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 1.0
}

// benchReps are deliberately small so `go test -bench=.` completes in
// minutes; REPRO_SCALE raises them toward the paper's counts.
func benchReps() RepCounts {
	return RepCounts{Collect: 60, Baseline: 8, Inject: 8}.Scale(benchScale())
}

var (
	injMu    sync.Mutex
	injCache = map[string]*InjectionResult{}
)

func printTable(b *testing.B, t *report.Table) {
	b.Helper()
	fmt.Printf("\n%s\n", t.Text())
}

func desktopPlatforms(b *testing.B) []*Platform {
	b.Helper()
	var out []*Platform
	for _, name := range []string{Intel9700KF, AMD9950X3D} {
		p, err := platform.New(name)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// injectionResult computes (or returns cached) Tables-3/4/5 data for a
// workload.
func injectionResult(b *testing.B, workload string) *InjectionResult {
	b.Helper()
	injMu.Lock()
	defer injMu.Unlock()
	if res, ok := injCache[workload]; ok {
		return res
	}
	// Config counts per platform follow the paper's rows: two alternate
	// configs on Intel for every workload; AMD gets one (two for MiniFE).
	cfgPer := map[string]int{Intel9700KF: 2, AMD9950X3D: 1}
	if workload == "minife" {
		cfgPer[AMD9950X3D] = 2
	}
	st := experiment.InjectionStudy{
		Platforms:          desktopPlatforms(b),
		Workload:           workload,
		Reps:               benchReps(),
		Seed:               benchSeed,
		Improved:           true,
		ConfigsPerPlatform: cfgPer,
	}
	res, err := st.Run()
	if err != nil {
		b.Fatal(err)
	}
	injCache[workload] = res
	return res
}

// BenchmarkTable1 regenerates Table 1: tracing overhead per workload.
func BenchmarkTable1(b *testing.B) {
	p, err := platform.New(Intel9700KF)
	if err != nil {
		b.Fatal(err)
	}
	reps := benchReps().Baseline
	for i := 0; i < b.N; i++ {
		rows, err := TracingOverhead(p, []string{"nbody", "babelstream", "minife"}, reps, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, RenderTable1(rows))
			var worst float64
			for _, r := range rows {
				if r.IncreasePct > worst {
					worst = r.IncreasePct
				}
			}
			b.ReportMetric(worst, "max-overhead-%")
		}
	}
}

// BenchmarkTable2 regenerates Table 2: average baseline s.d. (ms) per model
// and strategy across workloads and platforms.
func BenchmarkTable2(b *testing.B) {
	reps := benchReps().Baseline
	for i := 0; i < b.N; i++ {
		var results []*BaselineResult
		for _, p := range desktopPlatforms(b) {
			for _, w := range []string{"nbody", "babelstream", "minife"} {
				res, err := (experiment.BaselineStudy{
					Platform: p, Workload: w, Reps: reps,
					Seed: benchSeed, SMT: false,
				}).Run()
				if err != nil {
					b.Fatal(err)
				}
				results = append(results, res)
			}
		}
		if i == 0 {
			printTable(b, RenderTable2(results))
		}
	}
}

func benchInjectionTable(b *testing.B, num int, workload string) {
	for i := 0; i < b.N; i++ {
		if i > 0 {
			injMu.Lock()
			delete(injCache, workload)
			injMu.Unlock()
		}
		res := injectionResult(b, workload)
		if i == 0 {
			printTable(b, RenderInjectionTable(num, res))
			agg := AggregateChange([]*InjectionResult{res})
			b.ReportMetric(agg["omp"][0], "omp-Rm-change-%")
			b.ReportMetric(agg["sycl"][0], "sycl-Rm-change-%")
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (N-body under injection).
func BenchmarkTable3(b *testing.B) { benchInjectionTable(b, 3, "nbody") }

// BenchmarkTable4 regenerates Table 4 (Babelstream under injection).
func BenchmarkTable4(b *testing.B) { benchInjectionTable(b, 4, "babelstream") }

// BenchmarkTable5 regenerates Table 5 (MiniFE under injection).
func BenchmarkTable5(b *testing.B) { benchInjectionTable(b, 5, "minife") }

// BenchmarkTable6 regenerates Table 6: the aggregate relative performance
// change across Tables 3-5, plus the paper's headline shape checks.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var all []*InjectionResult
		for _, w := range []string{"nbody", "babelstream", "minife"} {
			all = append(all, injectionResult(b, w))
		}
		agg := AggregateChange(all)
		if i == 0 {
			printTable(b, RenderTable6(agg))
			checks := CheckInjectionShape(agg)
			if err := WriteChecks(os.Stdout, checks); err != nil {
				b.Fatal(err)
			}
			pass := 0
			for _, c := range checks {
				if c.Pass {
					pass++
				}
			}
			b.ReportMetric(float64(pass), "shape-checks-passed")
			b.ReportMetric(float64(len(checks)), "shape-checks-total")
		}
	}
}

// BenchmarkTable7 regenerates Table 7: replay accuracy for the paper's ten
// worst-case trace configurations.
func BenchmarkTable7(b *testing.B) {
	reps := benchReps()
	for i := 0; i < b.N; i++ {
		entries, err := (AccuracyStudy{
			Cases:    PaperAccuracyCases(),
			Reps:     reps,
			Seed:     benchSeed,
			Improved: true,
		}).Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, RenderTable7(entries))
			b.ReportMetric(MeanAccuracy(entries), "mean-accuracy-%")
		}
	}
}

// BenchmarkFigure1 regenerates Figure 1: schedbench variability across
// schedule:chunk combinations on A64FX with vs without reserved OS cores.
func BenchmarkFigure1(b *testing.B) {
	reps := benchReps().Baseline
	for i := 0; i < b.N; i++ {
		series, err := Figure1(reps, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, RenderFigure(1, "schedbench exec time (ms), reserved vs w/o", series))
			b.ReportMetric(maxSDOf(series, "A64FX:w/o"), "wo-max-sd-ms")
			b.ReportMetric(maxSDOf(series, "A64FX:reserved"), "rsv-max-sd-ms")
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2: Babelstream dot-kernel variability
// vs thread count on the two A64FX systems.
func BenchmarkFigure2(b *testing.B) {
	reps := benchReps().Baseline
	for i := 0; i < b.N; i++ {
		series, err := Figure2(reps, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable(b, RenderFigure(2, "Babelstream dot exec time (ms) vs threads", series))
			b.ReportMetric(maxSDOf(series, "A64FX:w/o"), "wo-max-sd-ms")
			b.ReportMetric(maxSDOf(series, "A64FX:reserved"), "rsv-max-sd-ms")
		}
	}
}

func maxSDOf(series []FigureSeries, system string) float64 {
	var worst float64
	for _, s := range series {
		if s.System == system && s.SD > worst {
			worst = s.SD
		}
	}
	return worst
}

// ---------------------------------------------------------------------------
// Ablation benches (design choices called out in DESIGN.md §4)
// ---------------------------------------------------------------------------

// ablationSetup builds one worst-case config on Intel/nbody for ablations.
func ablationSetup(b *testing.B, improved bool) (*Platform, Workload, *Config, *PipelineResult) {
	b.Helper()
	p, err := platform.New(Intel9700KF)
	if err != nil {
		b.Fatal(err)
	}
	w, err := p.WorkloadSpec("nbody")
	if err != nil {
		b.Fatal(err)
	}
	cfg, pr, err := BuildConfig(p, "nbody",
		ConfigSource{Model: "omp", Strategy: Rm, ID: 1},
		benchReps().Collect, improved, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	return p, w, cfg, pr
}

func meanInjected(b *testing.B, spec Spec, reps int) float64 {
	b.Helper()
	times, _, err := RunSeries(spec, reps)
	if err != nil {
		b.Fatal(err)
	}
	return stats.SummarizeTimes(times).Mean / 1000
}

// BenchmarkAblationMerge compares the original pessimistic overlap merge
// with the improved class-separated merge (§5.2's accuracy fix).
func BenchmarkAblationMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pOrig, w, cfgOrig, prOrig := ablationSetup(b, false)
		_, _, cfgImpr, _ := ablationSetup(b, true)
		reps := benchReps().Inject
		spec := Spec{Platform: pOrig, Workload: w, Model: "omp", Strategy: Rm, Seed: benchSeed + 1}
		spec.Inject = cfgOrig
		orig := meanInjected(b, spec, reps)
		spec.Inject = cfgImpr
		impr := meanInjected(b, spec, reps)
		anomaly := prOrig.Worst.ExecTime.Seconds()
		accOrig, _ := experiment.Accuracy(orig, anomaly)
		accImpr, _ := experiment.Accuracy(impr, anomaly)
		if i == 0 {
			fmt.Printf("\nAblation merge: anomaly=%.3fs original=%.3fs (acc %.2f%%) improved=%.3fs (acc %.2f%%)\n",
				anomaly, orig, accOrig*100, impr, accImpr*100)
			b.ReportMetric(accOrig*100, "orig-accuracy-%")
			b.ReportMetric(accImpr*100, "improved-accuracy-%")
		}
	}
}

// BenchmarkAblationDelta compares injecting the refined delta config
// against replaying the raw worst-case trace (double-counting the inherent
// noise, which the refinement of §4.2 exists to avoid).
func BenchmarkAblationDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, w, refinedCfg, pr := ablationSetup(b, true)
		rawCfg := Generate(pr.Worst, true)
		reps := benchReps().Inject
		anomaly := pr.Worst.ExecTime.Seconds()
		spec := Spec{Platform: p, Workload: w, Model: "omp", Strategy: Rm, Seed: benchSeed + 2}
		spec.Inject = refinedCfg
		refined := meanInjected(b, spec, reps)
		spec.Inject = rawCfg
		raw := meanInjected(b, spec, reps)
		accRefined, _ := experiment.Accuracy(refined, anomaly)
		accRaw, _ := experiment.Accuracy(raw, anomaly)
		if i == 0 {
			fmt.Printf("\nAblation delta: anomaly=%.3fs refined=%.3fs (acc %.2f%%) raw-worst=%.3fs (acc %.2f%%)\n",
				anomaly, refined, accRefined*100, raw, accRaw*100)
			b.ReportMetric(accRefined*100, "refined-accuracy-%")
			b.ReportMetric(accRaw*100, "raw-accuracy-%")
		}
	}
}

// BenchmarkAblationInjectorAffinity compares unpinned injector processes
// (the paper's design) against pinning each injector to its recorded CPU.
func BenchmarkAblationInjectorAffinity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, w, cfg, _ := ablationSetup(b, true)
		reps := benchReps().Inject
		spec := Spec{Platform: p, Workload: w, Model: "omp", Strategy: RmHK,
			Seed: benchSeed + 3, Inject: cfg}
		roam := meanInjected(b, spec, reps)
		spec.PinInjectors = true
		pinned := meanInjected(b, spec, reps)
		if i == 0 {
			fmt.Printf("\nAblation injector affinity (RmHK): roaming=%.3fs pinned=%.3fs\n", roam, pinned)
			b.ReportMetric(roam, "roaming-sec")
			b.ReportMetric(pinned, "pinned-sec")
		}
	}
}

// BenchmarkAblationWaitPolicy compares OpenMP active (spinning) vs passive
// barrier waiting under injection.
func BenchmarkAblationWaitPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, w, cfg, _ := ablationSetup(b, true)
		reps := benchReps().Inject
		active := omprt.DefaultConfig()
		passive := active
		passive.ActiveWait = false
		spec := Spec{Platform: p, Workload: w, Model: "omp", Strategy: Rm,
			Seed: benchSeed + 4, Inject: cfg}
		spec.OMP = &active
		act := meanInjected(b, spec, reps)
		spec.OMP = &passive
		pas := meanInjected(b, spec, reps)
		if i == 0 {
			fmt.Printf("\nAblation wait policy under injection: active=%.3fs passive=%.3fs\n", act, pas)
			b.ReportMetric(act, "active-sec")
			b.ReportMetric(pas, "passive-sec")
		}
	}
}

// BenchmarkAblationBalancer compares roaming with and without periodic idle
// balancing (migration is what lets Rm shed noise-delayed threads).
func BenchmarkAblationBalancer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, w, cfg, _ := ablationSetup(b, true)
		reps := benchReps().Inject
		spec := Spec{Platform: p, Workload: w, Model: "omp", Strategy: RmHK,
			Seed: benchSeed + 5, Inject: cfg}
		with := meanInjected(b, spec, reps)
		noBal, err := platform.New(Intel9700KF)
		if err != nil {
			b.Fatal(err)
		}
		noBal.SchedOpt.BalanceInterval = 0
		spec.Platform = noBal
		without := meanInjected(b, spec, reps)
		if i == 0 {
			fmt.Printf("\nAblation balancer (RmHK under injection): with=%.3fs without=%.3fs\n", with, without)
			b.ReportMetric(with, "balanced-sec")
			b.ReportMetric(without, "unbalanced-sec")
		}
	}
}

// ---------------------------------------------------------------------------
// Execution-layer speedup
// ---------------------------------------------------------------------------

// BenchmarkParallelSpeedup measures the wall-clock of one baseline series
// sequentially (parallelism 1) and over the default worker pool
// (REPRO_PARALLEL or GOMAXPROCS), verifies the outputs are bit-identical,
// and reports the speedup. On an N-core machine the ratio approaches the
// worker count; on a single core it stays ~1.
func BenchmarkParallelSpeedup(b *testing.B) {
	p, err := platform.New(Intel9700KF)
	if err != nil {
		b.Fatal(err)
	}
	w, err := p.WorkloadSpec("nbody")
	if err != nil {
		b.Fatal(err)
	}
	spec := Spec{Platform: p, Workload: w, Model: "omp", Strategy: Rm,
		Seed: benchSeed, Tracing: true}
	reps := benchReps().Baseline * 2
	par := Executor{}
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		seqT, _, err := RunSeriesExec(context.Background(), Executor{Parallelism: 1}, spec, reps)
		if err != nil {
			b.Fatal(err)
		}
		seqDur := time.Since(t0)
		t0 = time.Now()
		parT, _, err := RunSeriesExec(context.Background(), par, spec, reps)
		if err != nil {
			b.Fatal(err)
		}
		parDur := time.Since(t0)
		for j := range seqT {
			if seqT[j] != parT[j] {
				b.Fatalf("rep %d: sequential %v != parallel %v", j, seqT[j], parT[j])
			}
		}
		if i == 0 {
			fmt.Printf("\nParallel speedup: %d reps, %d workers: sequential=%v parallel=%v (%.2fx)\n",
				reps, par.Workers(), seqDur.Round(time.Millisecond),
				parDur.Round(time.Millisecond), float64(seqDur)/float64(parDur))
			b.ReportMetric(float64(seqDur)/float64(parDur), "speedup-x")
			b.ReportMetric(float64(par.Workers()), "workers")
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the substrates
// ---------------------------------------------------------------------------

// BenchmarkSimulatedRun measures the wall cost of one simulated traced
// execution (Intel, nbody, OMP, roaming).
func BenchmarkSimulatedRun(b *testing.B) {
	p, err := platform.New(Intel9700KF)
	if err != nil {
		b.Fatal(err)
	}
	w, err := p.WorkloadSpec("nbody")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var last Result
	for i := 0; i < b.N; i++ {
		res, err := RunOnce(Spec{
			Platform: p, Workload: w, Model: "omp", Strategy: Rm,
			Seed: uint64(i), Tracing: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	// Kernel counters of one run: how task requests were served (inline
	// program fast path vs goroutine coroutine handshake) and how many
	// dispatches the run performed.
	b.ReportMetric(float64(last.ContextSwitches), "ctxsw/run")
	b.ReportMetric(float64(last.GoroutineHandoffs), "handoffs/run")
	b.ReportMetric(float64(last.InlineDispatches), "inline/run")
}

// BenchmarkSimulatedRunBatch is BenchmarkSimulatedRun through the batched
// executor path: one warm world whose engine and scheduler are forked back
// to their construction snapshots between reps, instead of a fresh pair
// per run. The ns/op gap to BenchmarkSimulatedRun is the per-rep
// construction cost the snapshot path saves; outputs are byte-identical
// (the setup re-verifies one seed against RunOnce, the golden fixtures pin
// the full matrix).
func BenchmarkSimulatedRunBatch(b *testing.B) {
	p, err := platform.New(Intel9700KF)
	if err != nil {
		b.Fatal(err)
	}
	w, err := p.WorkloadSpec("nbody")
	if err != nil {
		b.Fatal(err)
	}
	spec := func(seed uint64) Spec {
		return Spec{Platform: p, Workload: w, Model: "omp", Strategy: Rm,
			Seed: seed, Tracing: true}
	}
	exec := Executor{Parallelism: 1, Batch: BatchOn, Worlds: NewWorldPool()}
	// Warm the pool outside the timer so the measured steady state is the
	// forked-world rep, not the one-time world construction, and spot-check
	// byte-identity of a warm rep against the legacy path.
	warm, _, err := RunSeriesExec(context.Background(), exec, spec(benchSeed), 1)
	if err != nil {
		b.Fatal(err)
	}
	fresh, err := RunOnce(spec(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	if warm[0] != fresh.ExecTime {
		b.Fatalf("batched rep %v != fresh rep %v", warm[0], fresh.ExecTime)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunSeriesExec(context.Background(), exec, spec(uint64(i)), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotSweep prices the batch path on a realistic multi-series
// flow: a small intensity sweep whose config hunt, per-strategy baselines,
// and injected points all share one warm-world pool — exactly the many
// short series the pool amortizes across. The setup runs the same sweep
// with batching off, verifies the points are identical, and reports the
// wall-clock ratio as speedup-x; the timed loop then measures the batched
// sweep.
func BenchmarkSnapshotSweep(b *testing.B) {
	p, err := platform.New(Intel9700KF)
	if err != nil {
		b.Fatal(err)
	}
	sweep := func(batch BatchPolicy) ([]IntensityPoint, error) {
		return IntensitySweep{
			Platform:   p,
			Workload:   "nbody",
			Model:      "omp",
			Strategies: []Strategy{Rm, RmHK},
			Factors:    []float64{1, 2},
			Reps:       RepCounts{Collect: 20, Baseline: 4, Inject: 4},
			Seed:       benchSeed,
			Exec:       Executor{Parallelism: 1, Batch: batch},
		}.Run()
	}
	t0 := time.Now()
	off, err := sweep(BatchOff)
	if err != nil {
		b.Fatal(err)
	}
	offDur := time.Since(t0)
	t0 = time.Now()
	on, err := sweep(BatchOn)
	if err != nil {
		b.Fatal(err)
	}
	onDur := time.Since(t0)
	if fmt.Sprint(off) != fmt.Sprint(on) {
		b.Fatalf("batched sweep diverged from unbatched:\noff: %v\non:  %v", off, on)
	}
	b.ReportMetric(float64(offDur)/float64(onDur), "speedup-x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep(BatchOn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedRunObs is BenchmarkSimulatedRun with the passive
// observability recorder attached in each of its three modes. Compare the
// "off" case against BenchmarkSimulatedRun to verify the disabled path
// (a nil observer check per emission site) costs <=2%; "counters" and
// "timeline" price the enabled modes. `make bench-obs` records the four
// as BENCH_obs.json.
func BenchmarkSimulatedRunObs(b *testing.B) {
	p, err := platform.New(Intel9700KF)
	if err != nil {
		b.Fatal(err)
	}
	w, err := p.WorkloadSpec("nbody")
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		opts func() *obs.Options
	}{
		{"off", func() *obs.Options { return nil }},
		{"counters", func() *obs.Options { return &obs.Options{Reg: obs.NewRegistry()} }},
		{"timeline", func() *obs.Options { return &obs.Options{Timeline: true} }},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var events uint64
			for i := 0; i < b.N; i++ {
				res, err := RunOnce(Spec{
					Platform: p, Workload: w, Model: "omp", Strategy: Rm,
					Seed: uint64(i), Tracing: true, Obs: m.opts(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Obs != nil {
					events = res.Obs.Total()
				}
			}
			if events > 0 {
				b.ReportMetric(float64(events), "obs-events/run")
			}
		})
	}
}

// BenchmarkPipeline measures stages 1+2 end to end on a tiny machine.
func BenchmarkPipeline(b *testing.B) {
	p, err := platform.New(machine.TinyTest)
	if err != nil {
		b.Fatal(err)
	}
	w, err := workloads.ByName("nbody", "small")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := Pipeline{
			Spec: Spec{Platform: p, Workload: w, Model: "omp",
				Strategy: mitigate.Rm, Seed: uint64(i)},
			CollectRuns: 10,
			Improved:    true,
		}
		if _, err := pl.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionMemoryNoise exercises the §7 future-work extension:
// memory-interference injection. Unlike CPU-occupation noise, memory noise
// degrades a bandwidth-bound workload even when housekeeping cores are
// available to absorb it, because machine bandwidth is a global resource —
// quantifying the limitation the paper's §6 acknowledges for its
// CPU-occupation-only injector.
func BenchmarkExtensionMemoryNoise(b *testing.B) {
	p, err := platform.New(Intel9700KF)
	if err != nil {
		b.Fatal(err)
	}
	w, err := p.WorkloadSpec("babelstream")
	if err != nil {
		b.Fatal(err)
	}
	reps := benchReps().Inject
	for i := 0; i < b.N; i++ {
		base := meanInjected(b, Spec{Platform: p, Workload: w, Model: "omp",
			Strategy: RmHK2, Seed: benchSeed + 6}, reps)
		memCfg, err := (core.MemoryNoiseSpec{
			Window:     4 * 1e9, // 4 s, beyond the run
			Workers:    2,
			Period:     20 * 1e6, // 20 ms
			BurstBytes: 200e6,    // ~10 GB/s of extra traffic
		}).Build()
		if err != nil {
			b.Fatal(err)
		}
		memNoisy := meanInjected(b, Spec{Platform: p, Workload: w, Model: "omp",
			Strategy: RmHK2, Seed: benchSeed + 6, Inject: memCfg}, reps)
		if i == 0 {
			fmt.Printf("\nExtension memory noise (babelstream, RmHK2): base=%.3fs mem-noisy=%.3fs (%+.1f%%)\n",
				base, memNoisy, (memNoisy/base-1)*100)
			b.ReportMetric(base, "base-sec")
			b.ReportMetric(memNoisy, "memnoise-sec")
		}
	}
}

// BenchmarkIntensitySweep quantifies the abstract's "mitigation
// effectiveness varies with noise intensity": the captured worst case is
// amplified and replayed across strategies, locating where housekeeping's
// baseline cost is overtaken by its worst-case protection.
func BenchmarkIntensitySweep(b *testing.B) {
	p, err := platform.New(Intel9700KF)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		points, err := (IntensitySweep{
			Platform:   p,
			Workload:   "nbody",
			Strategies: []Strategy{Rm, RmHK, RmHK2},
			Factors:    []float64{0.5, 1, 2, 4, 8},
			Reps:       benchReps(),
			Seed:       benchSeed,
		}).Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nIntensity sweep (nbody, Intel): injected mean seconds\n")
			fmt.Printf("%-8s", "factor")
			for _, s := range []Strategy{Rm, RmHK, RmHK2} {
				fmt.Printf(" %8s", s.Name())
			}
			fmt.Println()
			for _, f := range []float64{0.5, 1, 2, 4, 8} {
				fmt.Printf("%-8.1f", f)
				for _, s := range []Strategy{Rm, RmHK, RmHK2} {
					for _, pt := range points {
						if pt.Factor == f && pt.Strategy == s {
							fmt.Printf(" %8.3f", pt.MeanSec)
						}
					}
				}
				fmt.Println()
			}
			cross := CrossoverFactor(points, Rm, RmHK)
			fmt.Printf("RmHK overtakes Rm at amplification factor: %.1f (0 = never in range)\n", cross)
			b.ReportMetric(cross, "hk-crossover-factor")
		}
	}
}

// BenchmarkRunlevel3 reproduces the paper's §5.1 verification: re-running
// baselines at runlevel 3 (GUI disabled) reduces variability without
// changing the trends.
func BenchmarkRunlevel3(b *testing.B) {
	p, err := platform.New(Intel9700KF)
	if err != nil {
		b.Fatal(err)
	}
	reps := benchReps().Baseline * 3
	for i := 0; i < b.N; i++ {
		rows, err := (experiment.RunlevelStudy{
			Platform:  p,
			Workloads: []string{"nbody", "babelstream", "minife"},
			Reps:      reps,
			Seed:      benchSeed,
		}).Run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nRunlevel 3 vs 5 baseline variability (sd ms):\n")
			var sum float64
			for _, r := range rows {
				fmt.Printf("  %-12s rl5 sd=%6.2f  rl3 sd=%6.2f  (mean %7.1f -> %7.1f ms)\n",
					r.Workload, r.RL5.SD, r.RL3.SD, r.RL5.Mean, r.RL3.Mean)
				sum += r.SDReductionPct()
			}
			b.ReportMetric(sum/float64(len(rows)), "avg-sd-reduction-%")
		}
	}
}
