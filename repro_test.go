package repro

// Integration tests of the public facade: they exercise the documented API
// end to end on small configurations.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
)

func TestFacadePlatformsAndWorkloads(t *testing.T) {
	if len(PlatformNames()) != 4 {
		t.Fatalf("platforms: %v", PlatformNames())
	}
	if len(WorkloadNames()) != 6 {
		t.Fatalf("workloads: %v", WorkloadNames())
	}
	for _, name := range PlatformNames() {
		if _, err := NewPlatform(name); err != nil {
			t.Fatalf("NewPlatform(%q): %v", name, err)
		}
	}
	if _, err := NewPlatform("pdp-11"); err == nil {
		t.Fatal("unknown platform should error")
	}
	if len(Strategies()) != 6 {
		t.Fatal("six strategy columns expected")
	}
}

func TestFacadeEndToEndPipeline(t *testing.T) {
	p, err := NewPlatform(machine.TinyTest)
	if err != nil {
		t.Fatal(err)
	}
	w, err := p.TinySpec("nbody")
	if err != nil {
		t.Fatal(err)
	}

	// Baseline.
	times, traces, err := RunSeries(Spec{
		Platform: p, Workload: w, Model: "omp", Strategy: Rm,
		Seed: 1, Tracing: true,
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 8 || len(traces) != 8 {
		t.Fatal("series incomplete")
	}

	// Stage 2 by hand: profile -> worst -> refine -> generate.
	profile := BuildProfile(traces)
	worst, _, err := WorstCase(traces)
	if err != nil {
		t.Fatal(err)
	}
	refined := Refine(worst, profile)
	cfg := Generate(refined, true)
	if cfg.Window != worst.ExecTime {
		t.Fatal("config window mismatch")
	}

	// Stage 3.
	res, err := RunOnce(Spec{
		Platform: p, Workload: w, Model: "omp", Strategy: RmHK,
		Seed: 99, Inject: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime <= 0 {
		t.Fatal("injected run produced no time")
	}

	// Trace text round trip through the facade.
	var buf bytes.Buffer
	if err := WriteTraceText(&buf, worst); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.ExecTime != worst.ExecTime || len(back.Events) != len(worst.Events) {
		t.Fatal("trace text round trip lost data")
	}
}

func TestFacadeBuildConfig(t *testing.T) {
	p, err := NewPlatform(machine.TinyTest)
	if err != nil {
		t.Fatal(err)
	}
	// BuildConfig resolves the platform-sized workload internally; use the
	// tiny platform where sizes are the defaults.
	cfg, pr, err := BuildConfig(p, "schedbench",
		ConfigSource{Model: "omp", Strategy: TP, ID: 1}, 6, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Validate() != nil || pr.Worst == nil {
		t.Fatal("BuildConfig artifacts incomplete")
	}
}

func TestFacadeRenderHelpers(t *testing.T) {
	rows := []OverheadRow{{Workload: "nbody", OffSec: 1, OnSec: 1.005, IncreasePct: 0.5}}
	if !strings.Contains(RenderTable1(rows).Text(), "nbody") {
		t.Fatal("RenderTable1 broken")
	}
	agg := map[string][]float64{
		"omp":  {40, 20, 17, 49, 27, 24},
		"sycl": {19, 10, 8, 22, 10, 9},
	}
	if !strings.Contains(RenderTable6(agg).Text(), "Table 6") {
		t.Fatal("RenderTable6 broken")
	}
	checks := CheckInjectionShape(agg)
	if len(checks) == 0 {
		t.Fatal("no shape checks")
	}
	var buf bytes.Buffer
	if err := WriteChecks(&buf, checks); err != nil {
		t.Fatal(err)
	}
	if MeanAccuracy(nil) != 0 {
		t.Fatal("MeanAccuracy(nil)")
	}
	if len(PaperAccuracyCases()) != 10 {
		t.Fatal("ten paper accuracy cases expected")
	}
	if DefaultReps().Collect <= 0 {
		t.Fatal("DefaultReps broken")
	}
}
