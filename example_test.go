package repro_test

// Godoc examples for the public API. They print derived facts rather than
// raw simulated times so they stay stable as model constants are tuned.

import (
	"fmt"

	"repro"
)

// ExampleRunOnce runs one traced execution on a simulated platform.
func ExampleRunOnce() {
	p, _ := repro.NewPlatform(repro.Intel9700KF)
	w, _ := p.WorkloadSpec("nbody")
	res, err := repro.RunOnce(repro.Spec{
		Platform: p, Workload: w, Model: "omp", Strategy: repro.Rm,
		Seed: 1, Tracing: true,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("finished:", res.ExecTime > 0)
	fmt.Println("traced events:", len(res.Trace.Events) > 100)
	// Output:
	// finished: true
	// traced events: true
}

// ExampleBuildConfig runs injector stages 1+2 and inspects the artifacts.
func ExampleBuildConfig() {
	p, _ := repro.NewPlatform(repro.Intel9700KF)
	cfg, pipeline, err := repro.BuildConfig(p, "nbody",
		repro.ConfigSource{Model: "omp", Strategy: repro.Rm, ID: 1},
		30 /* collect runs; the paper uses 1000 */, true, 42)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("worst case is the slowest run:", pipeline.Worst.ExecTime >= repro.Time(pipeline.BaselineMean*1e6))
	fmt.Println("refinement never adds noise:", pipeline.Refined.TotalNoise() <= pipeline.Worst.TotalNoise())
	fmt.Println("config valid:", cfg.Validate() == nil)
	// Output:
	// worst case is the slowest run: true
	// refinement never adds noise: true
	// config valid: true
}

// ExampleStrategy_Name shows the paper's configuration labels.
func ExampleStrategy_Name() {
	for _, s := range repro.Strategies() {
		fmt.Println(s.Name())
	}
	fmt.Println(repro.TPHK2.WithSMT().Name())
	// Output:
	// Rm
	// RmHK
	// RmHK2
	// TP
	// TPHK
	// TPHK2
	// TPHK2-SMT
}
